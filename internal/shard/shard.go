// Package shard horizontally partitions a Proximity cache across N
// independently-locked sub-caches, removing the single-mutex bottleneck
// that serializes FlatCache and LSHCache lookups under concurrent load.
// The paper's middleware deployment (Fig. 4) serves many clients at once;
// serving-oriented RAG caches (RAGCache, Cache-Craft) show that lock
// contention, not mean lookup cost, dominates tail latency at scale.
//
// Keys are routed to shards by either an LSH signature (the default:
// similar queries collide on the same shard with high probability, so
// approximate hits survive partitioning) or a byte fingerprint (exact
// repeats only, but perfectly uniform spread). Each shard is any
// core.Cache — FLAT or LSH — built by a per-shard factory, and the whole
// structure satisfies core.Cache, making ShardedCache a drop-in for
// core.CachedRetriever.
//
// A skewed query stream can still concentrate signatures on a few shards
// (the eviction-pressure report's Imbalance makes this visible). Under
// LSH-signature routing the partitioner is re-drawable at runtime:
// Reseed re-draws the hyperplanes and migrates entries shard-by-shard
// without a stop-the-world lock, and PreviewSeed predicts a candidate
// seed's imbalance before committing to a migration. See migrate.go and
// internal/rebalance for the controller that closes the loop.
package shard

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"proximity/internal/core"
	"proximity/internal/lsh"
	"proximity/internal/tier"
	"proximity/internal/vec"
)

// Partition selects the key-to-shard routing strategy.
type Partition int

const (
	// LSHSignature routes by a random-hyperplane signature reduced
	// modulo the shard count. Queries within the cache tolerance share
	// a signature with high probability, so approximate hits survive
	// sharding — the same locality argument as Proximity-LSH itself
	// (§3.2). This is the default.
	LSHSignature Partition = iota + 1
	// Fingerprint routes by an FNV-1a hash of the embedding bytes.
	// Spread across shards is uniform regardless of embedding
	// geometry, but only byte-identical repeats land on the same
	// shard, so approximate matches across rephrasings are lost.
	Fingerprint
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	switch p {
	case LSHSignature:
		return "lsh"
	case Fingerprint:
		return "fingerprint"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// ParsePartition converts a string into a Partition.
func ParsePartition(s string) (Partition, error) {
	switch s {
	case "lsh":
		return LSHSignature, nil
	case "fingerprint":
		return Fingerprint, nil
	default:
		return 0, fmt.Errorf("shard: unknown partition strategy %q", s)
	}
}

// Factory builds the sub-cache for one shard index. Factories let any
// core.Cache variant back a shard; the helpers in this package cover the
// FLAT and LSH cases. The factory is retained for the lifetime of the
// ShardedCache: a re-draw migration (Reseed) rebuilds shards through it.
type Factory func(shard int) (core.Cache, error)

// DefaultSignatureBits is the partitioner's hyperplane count when
// Options.SignatureBits is zero. 2^10 signatures spread far more finely
// than any realistic shard count, keeping the modulo reduction balanced.
const DefaultSignatureBits = 10

// Options configures a ShardedCache.
type Options struct {
	// Shards is the number of independently-locked partitions.
	// Defaults to runtime.GOMAXPROCS(0).
	Shards int
	// Partition is the routing strategy. Defaults to LSHSignature.
	Partition Partition
	// SignatureBits is the hyperplane count of the LSHSignature
	// partitioner (ignored by Fingerprint). Defaults to
	// DefaultSignatureBits, capped at lsh.MaxBits.
	SignatureBits int
	// Seed drives the partitioner's hyperplane draw, so a fixed seed
	// reproduces the same shard assignment. Reseed replaces it at
	// runtime.
	Seed uint64
	// New builds each shard's sub-cache. Required.
	New Factory
}

// slot is one shard position: the live sub-cache plus the counter
// baseline carried across sub-cache generations. The lock is held shared
// for every cache operation and exclusively only while a migration swaps
// or fills this slot, so distinct shards never contend and a migration
// blocks one shard at a time — never the world.
type slot struct {
	mu    sync.RWMutex
	cache core.Cache
	// base folds in the counters of retired sub-cache generations and
	// the corrections that keep migration re-inserts out of the Puts
	// totals; a slot's externally visible counters are always
	// base + cache.Stats().
	base core.Stats
	// indexBase folds in the cumulative graph counters (traversal work,
	// slot-reuse repair, maintenance passes) of retired graph-indexed
	// sub-cache generations; gauges (Nodes, Slots, Tombstones,
	// PendingRepair) describe only the live generation and are never
	// folded.
	indexBase core.IndexStats
	// tierBase does the same for retired tiered sub-cache generations:
	// cumulative tier counters (hits by tier, promotions, demotions,
	// discards) survive a migration, occupancy gauges do not.
	tierBase core.TierStats
}

// stats returns the slot's externally visible counters.
func (s *slot) stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return addStats(s.base, s.cache.Stats())
}

// addStats sums two counter snapshots field-wise.
func addStats(a, b core.Stats) core.Stats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Puts += b.Puts
	a.Evictions += b.Evictions
	a.DistComps += b.DistComps
	a.HashOps += b.HashOps
	return a
}

// ShardedCache hash-partitions keys across independently-locked
// sub-caches. It satisfies core.Cache, so it drops into
// core.CachedRetriever wherever a FlatCache or LSHCache does. All methods
// are safe for concurrent use; distinct shards never contend.
type ShardedCache struct {
	slots   []slot
	part    Partition
	factory Factory
	dim     int
	bits    int // LSHSignature hyperplane count; 0 under Fingerprint

	// hasher is the LSHSignature partitioner (nil under Fingerprint).
	// It is swapped atomically by Reseed, so routing reads never lock.
	hasher atomic.Pointer[lsh.Hasher]
	seed   atomic.Uint64
	// migrateMu serializes the structural operations — Reseed and
	// Clear. A Clear overlapping a migration would otherwise be undone
	// piecemeal: the sweep re-inserts entries it enumerated before the
	// flush into slots the flush already emptied, and no ordering of
	// generation checks closes every interleaving. Reseed try-locks
	// (ErrMigrationInProgress rather than queueing); Clear waits — a
	// flush blocking for one migration's milliseconds beats a flush
	// that silently resurrects entries. Per-query operations never
	// touch this lock.
	migrateMu sync.Mutex
}

var _ core.Cache = (*ShardedCache)(nil)

// New creates a ShardedCache for dim-dimensional embeddings, building one
// sub-cache per shard through opts.New.
func New(dim int, opts Options) (*ShardedCache, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("shard: dimension must be positive, got %d", dim)
	}
	if opts.New == nil {
		return nil, fmt.Errorf("shard: a sub-cache factory is required")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("shard: shard count must be non-negative, got %d", opts.Shards)
	}
	n := opts.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if opts.Partition == 0 {
		opts.Partition = LSHSignature
	}
	c := &ShardedCache{
		slots:   make([]slot, n),
		part:    opts.Partition,
		factory: opts.New,
		dim:     dim,
	}
	switch opts.Partition {
	case LSHSignature:
		bits := opts.SignatureBits
		if bits == 0 {
			bits = DefaultSignatureBits
		}
		if bits > lsh.MaxBits {
			bits = lsh.MaxBits
		}
		hasher, err := lsh.NewHasher(dim, bits, opts.Seed)
		if err != nil {
			return nil, err
		}
		c.bits = bits
		c.hasher.Store(hasher)
		c.seed.Store(opts.Seed)
	case Fingerprint:
		// No partitioner state needed.
	default:
		return nil, fmt.Errorf("shard: unknown partition strategy %d", int(opts.Partition))
	}
	for i := range c.slots {
		sub, err := opts.New(i)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		if sub == nil {
			return nil, fmt.Errorf("shard: factory returned nil cache for shard %d", i)
		}
		c.slots[i].cache = sub
	}
	return c, nil
}

// NewFlat creates a ShardedCache of FLAT sub-caches. The configured
// capacity is the TOTAL across shards (split evenly, rounded up), so the
// result is a drop-in replacement for a single FlatCache of the same
// capacity. seed drives the shard partitioner.
func NewFlat(dim, shards int, opts core.Options, seed uint64) (*ShardedCache, error) {
	// Resolve the shard count once so the per-shard capacity split and
	// the built partition count can never diverge.
	n := shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	per := opts.Capacity / n
	if opts.Capacity%n != 0 {
		per++
	}
	sub := opts
	sub.Capacity = per
	return New(dim, Options{
		Shards: n,
		Seed:   seed,
		New:    func(int) (core.Cache, error) { return core.NewFlat(dim, sub) },
	})
}

// NewIndexed creates a ShardedCache of graph-indexed sub-caches
// (core.IndexedCache). Like NewFlat, the configured capacity is the TOTAL
// across shards (split evenly, rounded up). Each shard's graph draws its
// own layer-assignment seed (seed + 1 + shard index); the partitioner
// uses seed directly. Sub-caches implement core.EntrySource, so Reseed
// migration works unchanged.
func NewIndexed(dim, shards int, opts core.IndexedOptions, seed uint64) (*ShardedCache, error) {
	n := shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	per := opts.Capacity / n
	if opts.Capacity%n != 0 {
		per++
	}
	return New(dim, Options{
		Shards: n,
		Seed:   seed,
		New: func(i int) (core.Cache, error) {
			sub := opts
			sub.Capacity = per
			sub.Seed = seed + 1 + uint64(i)
			return core.NewIndexed(dim, sub)
		},
	})
}

// NewTiered creates a ShardedCache of tiered sub-caches (tier.
// TieredCache): each shard composes its own hot in-memory cache over its
// own file-backed warm tier, and the per-shard cold snapshots
// (WriteSnapshots/LoadSnapshots) make the whole structure warm-
// restartable. The configured hot and warm capacities are TOTALS across
// shards (split evenly, rounded up). Each shard's warm tier draws its
// own pivot seed (seed + 1 + shard index); the partitioner uses seed
// directly. Tiered sub-caches enumerate entries, so Reseed migration
// works unchanged; retired generations release their warm record files
// on swap.
func NewTiered(dim, shards int, opts tier.Options, seed uint64) (*ShardedCache, error) {
	n := shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	splitUp := func(total int) int {
		per := total / n
		if total%n != 0 {
			per++
		}
		return per
	}
	hot, warm := splitUp(opts.HotCapacity), splitUp(opts.WarmCapacity)
	return New(dim, Options{
		Shards: n,
		Seed:   seed,
		New: func(i int) (core.Cache, error) {
			sub := opts
			sub.HotCapacity = hot
			sub.WarmCapacity = warm
			sub.Seed = seed + 1 + uint64(i)
			return tier.New(dim, sub)
		},
	})
}

// NewLSH creates a ShardedCache of LSH sub-caches. Each shard keeps the
// full bucket geometry (2^Bits buckets of BucketCapacity) — buckets are
// lazily allocated, so actual memory still tracks usage. Shard sub-caches
// draw distinct hyperplanes (opts.Seed + shard index); the partitioner
// uses opts.Seed directly.
func NewLSH(dim, shards int, opts core.LSHOptions) (*ShardedCache, error) {
	return New(dim, Options{
		Shards: shards,
		Seed:   opts.Seed,
		New: func(i int) (core.Cache, error) {
			sub := opts
			sub.Seed = opts.Seed + 1 + uint64(i)
			return core.NewLSH(dim, sub)
		},
	})
}

// ShardFor returns the shard index a query routes to. Deterministic for a
// fixed partitioner seed (Reseed re-draws it); exported for diagnostics
// and tests.
func (c *ShardedCache) ShardFor(q vec.Vector) int {
	switch c.part {
	case Fingerprint:
		return int(FingerprintOf(q) % uint32(len(c.slots)))
	default:
		return shardIndex(c.hasher.Load().Hash(q), len(c.slots))
	}
}

// shardIndex reduces an LSH signature to a shard index. The signature
// MUST be avalanche-mixed before the modulo: a raw `sig % n` with a
// power-of-two shard count keeps only the low log2(n) bits, i.e. the
// signs of the first few hyperplanes — every other hyperplane (and most
// of a re-draw's entropy) would be dead weight, exactly the low-bit
// pathology the cluster ring's keyPos already corrects for. Shared by
// routing (ShardFor), migration (Reseed), and prediction (PreviewSeed),
// which must agree bit-for-bit.
func shardIndex(sig uint32, n int) int {
	return int(mix32(sig) % uint32(n))
}

// mix32 is the murmur3 finalizer: a full-avalanche bijection on 32-bit
// words.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Seed returns the current partitioner seed (the construction seed until
// the first Reseed).
func (c *ShardedCache) Seed() uint64 { return c.seed.Load() }

// SignatureBits returns the partitioner's hyperplane count (0 under
// Fingerprint routing).
func (c *ShardedCache) SignatureBits() int { return c.bits }

// FingerprintOf is FNV-1a over the embedding's float bits — the exact-
// match routing key. Shared with the batch pipeline (internal/batch),
// which uses it both to spread misses across its queues and to detect
// byte-identical in-flight duplicates.
func FingerprintOf(q vec.Vector) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, f := range q {
		bits := math.Float32bits(f)
		for s := 0; s < 32; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime32
		}
	}
	return h
}

// slotFor routes the query and returns its slot with the shared lock
// HELD (the caller unlocks). Routing is re-validated after the lock is
// acquired: a Reseed landing between the hash and the lock would
// otherwise direct this operation at a shard the migration has already
// swept — a Put there would be stranded where the new draw never looks
// until eviction. If the partitioner pointer is unchanged once the lock
// is held, any future swap's sweep must queue behind this lock and will
// carry the operation's effect along; if it changed, re-route under the
// new draw (in practice at most one retry per migration).
func (c *ShardedCache) slotFor(q vec.Vector) *slot {
	n := uint32(len(c.slots))
	if c.part == Fingerprint {
		s := &c.slots[FingerprintOf(q)%n]
		s.mu.RLock()
		return s
	}
	for {
		h := c.hasher.Load()
		s := &c.slots[shardIndex(h.Hash(q), len(c.slots))]
		s.mu.RLock()
		if c.hasher.Load() == h {
			return s
		}
		s.mu.RUnlock()
	}
}

// Get routes the query to its shard and looks it up there. Only that
// shard's lock is shared-held for the duration, so distinct shards never
// contend and a concurrent migration of this shard delays the lookup by
// at most one slot rebuild.
func (c *ShardedCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil {
		return nil, false
	}
	s := c.slotFor(q)
	defer s.mu.RUnlock()
	return s.cache.Get(q)
}

// Put routes the entry to its shard and inserts it under the sub-cache's
// configured tolerance.
func (c *ShardedCache) Put(q vec.Vector, docs []int) {
	if q == nil {
		return
	}
	s := c.slotFor(q)
	defer s.mu.RUnlock()
	s.cache.Put(q, docs)
}

// PutWithTolerance routes the entry to its shard and inserts it with its
// own match threshold (§3.3.3's per-line dynamic tolerance).
func (c *ShardedCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil {
		return
	}
	s := c.slotFor(q)
	defer s.mu.RUnlock()
	s.cache.PutWithTolerance(q, docs, tol)
}

// Len returns the total number of entries across shards.
func (c *ShardedCache) Len() int {
	total := 0
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		total += s.cache.Len()
		s.mu.RUnlock()
	}
	return total
}

// Capacity returns the summed capacity of all shards.
func (c *ShardedCache) Capacity() int {
	total := 0
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		total += s.cache.Capacity()
		s.mu.RUnlock()
	}
	return total
}

// NumShards returns the partition count.
func (c *ShardedCache) NumShards() int { return len(c.slots) }

// Partition returns the routing strategy.
func (c *ShardedCache) Partition() Partition { return c.part }

// Shard returns the i-th sub-cache, for diagnostics and tests. A
// migration may retire the returned instance at any time; counters read
// directly from it miss the slot baseline, so use ShardStats for
// accounting.
func (c *ShardedCache) Shard(i int) core.Cache {
	s := &c.slots[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// ShardStats returns a per-shard snapshot of the cumulative counters,
// including counters carried over from sub-cache generations a migration
// has retired.
func (c *ShardedCache) ShardStats() []core.Stats {
	out := make([]core.Stats, len(c.slots))
	for i := range c.slots {
		out[i] = c.slots[i].stats()
	}
	return out
}

// Stats aggregates counters across shards. HashOps includes both the
// partitioner's routing projections and any hashing the sub-caches do;
// the routing share is derived from the operation counts (every Get and
// Put hashes once) rather than tracked on the hot path, so lookups on
// distinct shards share no mutable state at all.
func (c *ShardedCache) Stats() core.Stats {
	var agg core.Stats
	for i := range c.slots {
		agg = addStats(agg, c.slots[i].stats())
	}
	if c.part == LSHSignature {
		agg.HashOps += (agg.Hits + agg.Misses + agg.Puts) * int64(c.bits)
	}
	return agg
}

// IndexStats aggregates graph-index counters across shards. Shards whose
// sub-caches are not graph-indexed contribute nothing, so a sharded flat
// or LSH cache reports the zero value. Implements core.IndexStatser.
func (c *ShardedCache) IndexStats() core.IndexStats {
	var agg core.IndexStats
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		agg.Merge(s.indexBase)
		if is, ok := s.cache.(core.IndexStatser); ok {
			agg.Merge(is.IndexStats())
		}
		s.mu.RUnlock()
	}
	return agg
}

// TierStats aggregates tier counters across shards, including retired
// generations' baselines. Shards whose sub-caches are not tiered
// contribute nothing. Implements core.TierStatser.
func (c *ShardedCache) TierStats() core.TierStats {
	var agg core.TierStats
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		agg.Merge(s.tierBase)
		if ts, ok := s.cache.(core.TierStatser); ok {
			agg.Merge(ts.TierStats())
		}
		s.mu.RUnlock()
	}
	return agg
}

// retireTierStats reduces a retired tiered generation's TierStats to its
// cumulative counters; the occupancy gauges belong to the replacement.
func retireTierStats(ts core.TierStats) core.TierStats {
	ts.HotEntries = 0
	ts.HotCapacity = 0
	ts.WarmEntries = 0
	ts.WarmCapacity = 0
	ts.WarmBytes = 0
	return ts
}

// Entries enumerates the combined contents of all shards (per-shard
// eviction order, shard order by index). Shards whose sub-caches cannot
// enumerate are skipped. Implements core.EntrySource.
func (c *ShardedCache) Entries() []core.Entry {
	var out []core.Entry
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		if src, ok := s.cache.(core.EntrySource); ok {
			out = append(out, src.Entries()...)
		}
		s.mu.RUnlock()
	}
	return out
}

// Close releases per-shard resources (tiered sub-caches hold warm record
// files). Sub-caches without resources are unaffected. The cache must
// not be used afterwards.
func (c *ShardedCache) Close() error {
	var first error
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		if closer, ok := s.cache.(io.Closer); ok {
			if err := closer.Close(); first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

// retireIndexStats reduces a retired sub-cache generation's IndexStats to
// its cumulative counters: the gauges describe state that the replacement
// generation owns now, so carrying them forward would double-count.
func retireIndexStats(is core.IndexStats) core.IndexStats {
	is.Nodes = 0
	is.Slots = 0
	is.Tombstones = 0
	is.PendingRepair = 0
	return is
}

// Clear removes all entries from every shard (counters are preserved by
// sub-caches that preserve them). Clear waits for any in-flight
// migration first, so its flush cannot be undone by migration
// deliveries re-inserting already-enumerated entries.
func (c *ShardedCache) Clear() {
	c.migrateMu.Lock()
	defer c.migrateMu.Unlock()
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		s.cache.Clear()
		s.mu.RUnlock()
	}
}
