package shard

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"proximity/internal/core"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

const testDim = 32

func newFlatShards(t *testing.T, shards, capacity int) *ShardedCache {
	t.Helper()
	c, err := NewFlat(testDim, shards, core.Options{
		Capacity:  capacity,
		Tolerance: 1,
		Policy:    core.LRU,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	factory := func(int) (core.Cache, error) {
		return core.NewFlat(testDim, core.Options{Capacity: 4, Tolerance: 1})
	}
	cases := []struct {
		name string
		dim  int
		opts Options
	}{
		{"zero dim", 0, Options{New: factory}},
		{"nil factory", testDim, Options{}},
		{"negative shards", testDim, Options{Shards: -1, New: factory}},
		{"bad partition", testDim, Options{Partition: Partition(99), New: factory}},
	}
	for _, tc := range cases {
		if _, err := New(tc.dim, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New(testDim, Options{New: func(int) (core.Cache, error) {
		return nil, nil
	}}); err == nil {
		t.Error("nil sub-cache from factory should error")
	}
	if _, err := New(testDim, Options{New: func(int) (core.Cache, error) {
		return nil, fmt.Errorf("boom")
	}}); err == nil {
		t.Error("factory error should propagate")
	}
}

func TestDefaultsAndAccessors(t *testing.T) {
	c := newFlatShards(t, 4, 40)
	if got := c.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	if c.Partition() != LSHSignature {
		t.Fatalf("default partition = %v, want lsh", c.Partition())
	}
	// Total capacity covers the requested 40 (split evenly).
	if got := c.Capacity(); got < 40 {
		t.Errorf("Capacity = %d, want >= 40", got)
	}
	for i := 0; i < c.NumShards(); i++ {
		if c.Shard(i) == nil {
			t.Fatalf("Shard(%d) is nil", i)
		}
	}
	// Zero shards falls back to GOMAXPROCS.
	d, err := NewFlat(testDim, 0, core.Options{Capacity: 8, Tolerance: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() < 1 {
		t.Errorf("default shard count = %d, want >= 1", d.NumShards())
	}
}

func TestPartitionStrings(t *testing.T) {
	for _, p := range []Partition{LSHSignature, Fingerprint} {
		parsed, err := ParsePartition(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if parsed != p {
			t.Errorf("round-trip %v != %v", parsed, p)
		}
	}
	if _, err := ParsePartition("nope"); err == nil {
		t.Error("unknown strategy should error")
	}
}

// TestPutGetRoundTrip checks the core contract: an inserted key is found
// again, because Put and Get route through the same partitioner.
func TestPutGetRoundTrip(t *testing.T) {
	for _, part := range []Partition{LSHSignature, Fingerprint} {
		t.Run(part.String(), func(t *testing.T) {
			c, err := New(testDim, Options{
				Shards:    8,
				Partition: part,
				Seed:      7,
				New: func(int) (core.Cache, error) {
					return core.NewFlat(testDim, core.Options{Capacity: 16, Tolerance: 0.5})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := vec.NewRand(11)
			keys := make([]vec.Vector, 50)
			for i := range keys {
				keys[i] = vec.Scale(vec.RandomUnit(rng, testDim), 10)
				c.Put(keys[i], []int{i})
			}
			hits := 0
			for i, k := range keys {
				docs, ok := c.Get(k)
				if !ok {
					continue // may have been evicted by shard pressure
				}
				hits++
				if len(docs) != 1 || docs[0] != i {
					t.Errorf("key %d returned docs %v", i, docs)
				}
			}
			if hits == 0 {
				t.Error("no inserted key was found again")
			}
			st := c.Stats()
			if st.Puts != 50 {
				t.Errorf("Puts = %d, want 50", st.Puts)
			}
			if st.Lookups() != 50 {
				t.Errorf("Lookups = %d, want 50", st.Lookups())
			}
		})
	}
}

// TestRoutingDeterminism: a fixed construction seed fixes the shard
// assignment of every key.
func TestRoutingDeterminism(t *testing.T) {
	a := newFlatShards(t, 8, 64)
	b := newFlatShards(t, 8, 64)
	rng := vec.NewRand(3)
	for i := 0; i < 100; i++ {
		q := vec.RandomGaussian(rng, testDim)
		if sa, sb := a.ShardFor(q), b.ShardFor(q); sa != sb {
			t.Fatalf("key %d routed to %d and %d under the same seed", i, sa, sb)
		}
	}
}

// TestFingerprintSpread: the fingerprint partitioner reaches every shard
// given enough random keys.
func TestFingerprintSpread(t *testing.T) {
	const shards = 8
	c, err := New(testDim, Options{
		Shards:    shards,
		Partition: Fingerprint,
		New: func(int) (core.Cache, error) {
			return core.NewFlat(testDim, core.Options{Capacity: 128, Tolerance: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(5)
	seen := make(map[int]int)
	for i := 0; i < 512; i++ {
		seen[c.ShardFor(vec.RandomGaussian(rng, testDim))]++
	}
	if len(seen) != shards {
		t.Errorf("512 random keys reached only %d/%d shards", len(seen), shards)
	}
}

// TestDropInRetriever runs the sharded cache through the full Algorithm 1
// path of core.CachedRetriever, mirroring the core retriever tests: a
// first retrieval misses and fills, a repeat of the same query hits and
// bypasses the database.
func TestDropInRetriever(t *testing.T) {
	rng := vec.NewRand(9)
	db, err := vectordb.NewFlatIndex(testDim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	corpus := make([]vec.Vector, 40)
	for i := range corpus {
		corpus[i] = vec.Scale(vec.RandomUnit(rng, testDim), 10)
		if err := db.Add(corpus[i]); err != nil {
			t.Fatal(err)
		}
	}
	cache := newFlatShards(t, 4, 32)
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	q := vec.Scale(vec.RandomUnit(rng, testDim), 10)
	first, err := retr.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Error("first retrieval should miss")
	}
	if len(first.Docs) != 3 {
		t.Fatalf("first retrieval returned %d docs, want 3", len(first.Docs))
	}
	second, err := retr.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Error("repeat retrieval should hit the sharded cache")
	}
	if fmt.Sprint(second.Docs) != fmt.Sprint(first.Docs) {
		t.Errorf("hit returned %v, miss returned %v", second.Docs, first.Docs)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit and 1 miss", st)
	}
}

// TestShardStatsAggregation: the cache-wide snapshot is the sum of the
// per-shard snapshots plus routing hash work.
func TestShardStatsAggregation(t *testing.T) {
	c := newFlatShards(t, 4, 64)
	rng := vec.NewRand(13)
	for i := 0; i < 30; i++ {
		q := vec.Scale(vec.RandomUnit(rng, testDim), 10)
		c.Put(q, []int{i})
		c.Get(q)
	}
	var sum core.Stats
	for _, st := range c.ShardStats() {
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Puts += st.Puts
		sum.Evictions += st.Evictions
		sum.DistComps += st.DistComps
	}
	agg := c.Stats()
	if agg.Hits != sum.Hits || agg.Misses != sum.Misses || agg.Puts != sum.Puts {
		t.Errorf("aggregate %+v does not match per-shard sum %+v", agg, sum)
	}
	if agg.HashOps <= 0 {
		t.Error("routing should charge hash operations")
	}
	if got := c.Len(); got != int(sum.Puts-sum.Evictions) {
		t.Errorf("Len = %d, want %d", got, sum.Puts-sum.Evictions)
	}
}

func TestClear(t *testing.T) {
	c := newFlatShards(t, 4, 64)
	rng := vec.NewRand(17)
	for i := 0; i < 20; i++ {
		c.Put(vec.RandomGaussian(rng, testDim), []int{i})
	}
	if c.Len() == 0 {
		t.Fatal("cache unexpectedly empty before Clear")
	}
	c.Clear()
	if got := c.Len(); got != 0 {
		t.Errorf("Len after Clear = %d, want 0", got)
	}
}

func TestNilQuery(t *testing.T) {
	c := newFlatShards(t, 2, 8)
	if _, ok := c.Get(nil); ok {
		t.Error("nil query should miss")
	}
	c.Put(nil, []int{1})
	c.PutWithTolerance(nil, []int{1}, 1)
	if c.Len() != 0 {
		t.Error("nil puts should be ignored")
	}
}

func TestPressureReport(t *testing.T) {
	c := newFlatShards(t, 4, 8) // 2 entries per shard: force evictions
	rng := vec.NewRand(19)
	for i := 0; i < 64; i++ {
		c.Put(vec.Scale(vec.RandomUnit(rng, testDim), 10), []int{i})
	}
	r := c.Report()
	if len(r.Shards) != 4 {
		t.Fatalf("report covers %d shards, want 4", len(r.Shards))
	}
	if r.Entries != c.Len() {
		t.Errorf("report entries %d != Len %d", r.Entries, c.Len())
	}
	if r.Capacity != c.Capacity() {
		t.Errorf("report capacity %d != Capacity %d", r.Capacity, c.Capacity())
	}
	if r.Evictions != c.Stats().Evictions {
		t.Errorf("report evictions %d != stats %d", r.Evictions, c.Stats().Evictions)
	}
	if r.Evictions == 0 {
		t.Error("64 puts into 8 slots should evict")
	}
	if r.Imbalance < 1 {
		t.Errorf("imbalance %v below 1 (max cannot be below mean)", r.Imbalance)
	}
	if r.MaxOccupancy < r.Occupancy {
		t.Errorf("max occupancy %v below mean %v", r.MaxOccupancy, r.Occupancy)
	}
	out := r.Render()
	for _, want := range []string{"Shard pressure", "evictions", "imbalance"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentStress hammers one ShardedCache from many goroutines.
// Run with -race: the test's assertion is the absence of data races plus
// counter conservation afterwards.
func TestConcurrentStress(t *testing.T) {
	for _, part := range []Partition{LSHSignature, Fingerprint} {
		t.Run(part.String(), func(t *testing.T) {
			c, err := New(testDim, Options{
				Shards:    8,
				Partition: part,
				Seed:      23,
				New: func(int) (core.Cache, error) {
					return core.NewFlat(testDim, core.Options{
						Capacity: 32, Tolerance: 1, Policy: core.LRU,
					})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines = 16
				opsPerG    = 300
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := vec.NewRand(uint64(100 + g))
					for i := 0; i < opsPerG; i++ {
						q := vec.Scale(vec.RandomUnit(rng, testDim), 10)
						switch i % 4 {
						case 0:
							c.Put(q, []int{g, i})
						case 1:
							c.PutWithTolerance(q, []int{g, i}, 0.5)
						case 2:
							c.Get(q)
						default:
							c.Get(q)
							c.Report()
						}
					}
				}(g)
			}
			wg.Wait()
			st := c.Stats()
			wantPuts := int64(goroutines * opsPerG / 2)
			if st.Puts != wantPuts {
				t.Errorf("Puts = %d, want %d", st.Puts, wantPuts)
			}
			if got := int64(c.Len()); got != st.Puts-st.Evictions {
				t.Errorf("Len %d != Puts-Evictions %d", got, st.Puts-st.Evictions)
			}
			if c.Len() > c.Capacity() {
				t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
			}
		})
	}
}

// TestShardedLSH exercises the LSH-backed shard factory.
func TestShardedLSH(t *testing.T) {
	c, err := NewLSH(testDim, 4, core.LSHOptions{
		Bits: 4, Tolerance: 0.5, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(37)
	q := vec.Scale(vec.RandomUnit(rng, testDim), 10)
	c.Put(q, []int{1, 2})
	docs, ok := c.Get(q)
	if !ok || len(docs) != 2 {
		t.Fatalf("Get = %v, %v; want the cached docs", docs, ok)
	}
	if c.Capacity() != 4*(1<<4)*core.DefaultBucketCapacity {
		t.Errorf("Capacity = %d, want full per-shard bucket geometry", c.Capacity())
	}
}
