package shard

import (
	"errors"
	"fmt"
	"io"
	"time"

	"proximity/internal/core"
	"proximity/internal/lsh"
	"proximity/internal/vec"
)

// Typed migration failures, so callers (the rebalance controller, the
// server's admin endpoint) can distinguish "cannot ever rebalance this
// cache" from "try again later".
var (
	// ErrFingerprintPartition reports a Reseed/PreviewSeed on a
	// fingerprint-routed cache: byte-hash routing has no hyperplanes to
	// re-draw, and its spread is already uniform.
	ErrFingerprintPartition = errors.New("shard: fingerprint partitioning has no signature to re-draw")
	// ErrMigrationInProgress reports a Reseed overlapping another
	// migration or a Clear; at most one structural operation runs at a
	// time.
	ErrMigrationInProgress = errors.New("shard: a migration or clear is already in progress")
	// ErrNotMigratable reports sub-caches that cannot enumerate their
	// entries (they do not implement core.EntrySource), so a re-draw
	// could not carry their contents over.
	ErrNotMigratable = errors.New("shard: sub-cache does not support entry enumeration")
)

// Migration summarizes one completed signature re-draw.
type Migration struct {
	// Seed is the re-drawn partitioner seed now in effect.
	Seed uint64
	// Moved and Stayed count entries that changed shards vs. entries
	// re-homed in place.
	Moved  int
	Stayed int
	// Before and After are the pressure report's Imbalance on either
	// side of the migration (After is sampled immediately after the
	// last shard settles, so concurrent traffic is included).
	Before float64
	After  float64
	// Elapsed is the wall-clock migration time.
	Elapsed time.Duration
}

// String renders the one-line summary the server log and examples print.
func (m Migration) String() string {
	return fmt.Sprintf("reseed(seed=%d): imbalance %.2f -> %.2f, moved %d/%d entries in %v",
		m.Seed, m.Before, m.After, m.Moved, m.Moved+m.Stayed, m.Elapsed.Round(time.Microsecond))
}

// PreviewSeed predicts the Imbalance the current contents would have
// under a candidate partitioner seed, without touching routing state.
// Cost is O(entries · (dim + bits·dim)).
func (c *ShardedCache) PreviewSeed(seed uint64) (float64, error) {
	out, err := c.PreviewSeeds([]uint64{seed})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// PreviewSeeds scores several candidate seeds against ONE snapshot of
// the current keys, returning the predicted Imbalance per seed
// (parallel to the input). The rebalance controller auditions its whole
// candidate set this way and migrates only to the best draw — a re-draw
// is a gamble otherwise, since an unlucky new seed can concentrate keys
// worse than the old one. Keys are copied once regardless of how many
// candidates are scored (an earlier version re-snapshotted the whole
// cache per candidate — full deep copies of every entry, times the
// candidate count, taken under the serving locks); concurrent writers
// skew the prediction by at most the in-flight traffic.
func (c *ShardedCache) PreviewSeeds(seeds []uint64) ([]float64, error) {
	if c.part != LSHSignature {
		return nil, ErrFingerprintPartition
	}
	cands := make([]*lsh.Hasher, len(seeds))
	for i, seed := range seeds {
		h, err := lsh.NewHasher(c.dim, c.bits, seed)
		if err != nil {
			return nil, err
		}
		cands[i] = h
	}
	n := len(c.slots)
	counts := make([][]int, len(seeds))
	for i := range counts {
		counts[i] = make([]int, n)
	}
	total := 0
	for i := range c.slots {
		keys, err := c.slots[i].keys()
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			total++
			for j, cand := range cands {
				counts[j][shardIndex(cand.Hash(k), n)]++
			}
		}
	}
	out := make([]float64, len(seeds))
	for j := range seeds {
		maxCount := 0
		for _, ct := range counts[j] {
			if ct > maxCount {
				maxCount = ct
			}
		}
		out[j] = imbalanceOf(maxCount, total, n)
	}
	return out, nil
}

// keyser is the keys-only enumeration fast path (FlatCache and LSHCache
// both provide it); entry docs are irrelevant to a preview.
type keyser interface {
	Keys() []vec.Vector
}

// keys copies the slot's key embeddings out under the shared lock.
func (s *slot) keys() ([]vec.Vector, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ks, ok := s.cache.(keyser); ok {
		return ks.Keys(), nil
	}
	src, ok := s.cache.(core.EntrySource)
	if !ok {
		//proximity:allow lockdiscipline cold error path; the shared slot lock guards the cache swap itself
		return nil, fmt.Errorf("%w (%T)", ErrNotMigratable, s.cache)
	}
	entries := src.Entries()
	out := make([]vec.Vector, len(entries))
	for i, e := range entries {
		out[i] = e.Key
	}
	return out, nil
}

// Reseed re-draws the LSH partitioner from the given seed and migrates
// the cache contents to match, shard by shard. There is no stop-the-world
// phase: the new hasher is installed atomically (all new traffic routes
// by the re-drawn signature immediately), then each shard is rebuilt in
// turn while holding only that shard's lock — readers of every other
// shard proceed untouched. Until an entry's shard has been processed, a
// lookup that now routes elsewhere misses; for an approximate cache that
// is a transient hit-rate dip, never a wrong answer, and the window is
// one shard's rebuild.
//
// Counters are conserved: retired sub-cache generations fold into a
// per-slot baseline, and the migration's own re-inserts are subtracted
// from the Puts totals, so Hits/Misses/Puts/Evictions reflect client
// traffic exactly as if no migration had happened (evictions caused by
// entries crowding into a fuller target shard are genuine displacements
// and stay counted).
//
// Only LSH-signature routing is re-drawable (ErrFingerprintPartition
// otherwise), at most one migration runs at a time
// (ErrMigrationInProgress), and every sub-cache must implement
// core.EntrySource (ErrNotMigratable — checked before any state changes).
func (c *ShardedCache) Reseed(seed uint64) (Migration, error) {
	if c.part != LSHSignature {
		return Migration{}, ErrFingerprintPartition
	}
	if !c.migrateMu.TryLock() {
		return Migration{}, ErrMigrationInProgress
	}
	defer c.migrateMu.Unlock()

	// Fail before touching routing state: a half-migratable cache must
	// not be left half-migrated. That covers BOTH failure sources — sub-
	// caches that cannot enumerate entries, and factory errors — so the
	// replacement sub-caches are all built up front (empty caches are
	// cheap; unused ones are garbage-collected) and the sweep below
	// cannot fail after the hasher swap.
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.RLock()
		_, ok := s.cache.(core.EntrySource)
		s.mu.RUnlock()
		if !ok {
			return Migration{}, fmt.Errorf("shard %d: %w", i, ErrNotMigratable)
		}
	}
	fresh := make([]core.Cache, len(c.slots))
	for i := range fresh {
		sub, err := c.factory(i)
		if err != nil || sub == nil {
			return Migration{}, fmt.Errorf("shard: rebuilding shard %d: %w", i, err)
		}
		fresh[i] = sub
	}
	next, err := lsh.NewHasher(c.dim, c.bits, seed)
	if err != nil {
		return Migration{}, err
	}

	start := time.Now()
	m := Migration{Seed: seed, Before: c.Report().Imbalance}

	// From here on, all new traffic routes by the re-drawn signature;
	// the per-shard sweep below re-homes what the old draw placed.
	// Clear cannot interleave — it queues on migrateMu — so deliveries
	// can never resurrect entries a flush erased.
	c.hasher.Store(next)
	c.seed.Store(seed)

	n := len(c.slots)
	// delivered[j] counts entries this migration has already moved INTO
	// slot j before j's own sweep; j's sweep re-enumerates them as
	// "stay", so they must not count toward Stayed a second time.
	delivered := make([]int, n)
	// swapped marks slots whose pre-built replacement was installed;
	// replacements for slots with no leavers are never used and must be
	// closed (a fresh tiered cache already holds an open warm file).
	swapped := make([]bool, n)
	defer func() {
		for i, used := range swapped {
			if !used {
				if closer, ok := fresh[i].(io.Closer); ok {
					closer.Close()
				}
			}
		}
	}()
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		src, ok := s.cache.(core.EntrySource)
		if !ok {
			// Unreachable after the pre-flight check; guard anyway.
			s.mu.Unlock()
			return m, fmt.Errorf("shard %d: %w", i, ErrNotMigratable)
		}
		entries := src.Entries()
		var stay []core.Entry
		moves := make(map[int][]core.Entry)
		for _, e := range entries {
			if j := shardIndex(next.Hash(e.Key), n); j == i {
				stay = append(stay, e)
			} else {
				moves[j] = append(moves[j], e)
			}
		}
		if len(moves) > 0 {
			// Rebuild the slot without the leavers. Entries re-insert in
			// eviction order, so the survivor ordering carries over.
			for _, e := range stay {
				fresh[i].PutWithTolerance(e.Key, e.Docs, e.Tol)
			}
			retired := s.cache.Stats()
			retired.Puts -= int64(len(stay)) // re-inserts are not client traffic
			s.base = addStats(s.base, retired)
			if is, ok := s.cache.(core.IndexStatser); ok {
				s.indexBase.Merge(retireIndexStats(is.IndexStats()))
			}
			if ts, ok := s.cache.(core.TierStatser); ok {
				s.tierBase.Merge(retireTierStats(ts.TierStats()))
			}
			old := s.cache
			s.cache = fresh[i]
			swapped[i] = true
			// Retired tiered generations hold a warm record file; release
			// it now that the enumeration copied everything out.
			if closer, ok := old.(io.Closer); ok {
				closer.Close()
			}
		}
		s.mu.Unlock()

		// Deliver the leavers to their new owners, one shard at a time.
		// The exclusive lock makes the insert batch and its Puts
		// correction atomic against concurrent Stats readers.
		for j, list := range moves {
			d := &c.slots[j]
			d.mu.Lock()
			for _, e := range list {
				d.cache.PutWithTolerance(e.Key, e.Docs, e.Tol)
			}
			d.base.Puts -= int64(len(list))
			d.mu.Unlock()
			m.Moved += len(list)
			delivered[j] += len(list)
		}
		// Concurrent client puts can still perturb the count slightly;
		// the clamp keeps it sane.
		if stayed := len(stay) - delivered[i]; stayed > 0 {
			m.Stayed += stayed
		}
	}

	m.After = c.Report().Imbalance
	m.Elapsed = time.Since(start)
	return m, nil
}
