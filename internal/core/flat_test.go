package core

import (
	"sync"
	"testing"
	"testing/quick"

	"proximity/internal/vec"
)

func mustFlat(t *testing.T, dim int, opts Options) *FlatCache {
	t.Helper()
	c, err := NewFlat(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewFlatValidation(t *testing.T) {
	tests := []struct {
		name string
		dim  int
		opts Options
	}{
		{name: "zero capacity", dim: 4, opts: Options{Capacity: 0}},
		{name: "negative capacity", dim: 4, opts: Options{Capacity: -1}},
		{name: "negative tolerance", dim: 4, opts: Options{Capacity: 1, Tolerance: -0.1}},
		{name: "zero dim", dim: 0, opts: Options{Capacity: 1}},
		{name: "bad policy", dim: 4, opts: Options{Capacity: 1, Policy: Policy(9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewFlat(tt.dim, tt.opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestFlatDefaults(t *testing.T) {
	c := mustFlat(t, 2, Options{Capacity: 3})
	if c.Policy() != FIFO {
		t.Errorf("default policy = %v, want fifo", c.Policy())
	}
	if c.Tolerance() != 0 {
		t.Errorf("default tolerance = %v", c.Tolerance())
	}
	if c.Capacity() != 3 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestFlatMissOnEmpty(t *testing.T) {
	c := mustFlat(t, 2, Options{Capacity: 2, Tolerance: 100})
	if _, ok := c.Get(vec.Vector{0, 0}); ok {
		t.Error("empty cache must miss")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFlatExactMatchingAtZeroTolerance(t *testing.T) {
	// τ = 0 is equivalent to exact matching (§3.3.3).
	c := mustFlat(t, 2, Options{Capacity: 4, Tolerance: 0})
	c.Put(vec.Vector{1, 1}, []int{7})
	if docs, ok := c.Get(vec.Vector{1, 1}); !ok || docs[0] != 7 {
		t.Error("exact repeat should hit at τ=0")
	}
	if _, ok := c.Get(vec.Vector{1, 1.0001}); ok {
		t.Error("near miss should not hit at τ=0")
	}
}

func TestFlatToleranceBoundary(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 2})
	c.Put(vec.Vector{0}, []int{1})
	tests := []struct {
		name string
		q    vec.Vector
		want bool
	}{
		{name: "inside", q: vec.Vector{1.5}, want: true},
		{name: "exactly at tolerance", q: vec.Vector{2}, want: true},
		{name: "outside", q: vec.Vector{2.5}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, ok := c.Get(tt.q); ok != tt.want {
				t.Errorf("Get(%v) hit = %v, want %v", tt.q, ok, tt.want)
			}
		})
	}
}

func TestFlatReturnsClosestEntry(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 10})
	c.Put(vec.Vector{0}, []int{100})
	c.Put(vec.Vector{5}, []int{200})
	c.Put(vec.Vector{9}, []int{300})
	docs, ok := c.Get(vec.Vector{4})
	if !ok || docs[0] != 200 {
		t.Errorf("Get(4) = %v, %v; want docs of key 5", docs, ok)
	}
}

func TestFlatGetCopiesValue(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 1})
	c.Put(vec.Vector{0}, []int{1, 2, 3})
	docs, ok := c.Get(vec.Vector{0})
	if !ok {
		t.Fatal("expected hit")
	}
	docs[0] = 99
	again, _ := c.Get(vec.Vector{0})
	if again[0] != 1 {
		t.Error("Get must return a copy, not the cached slice")
	}
}

func TestFlatPutCopiesInputs(t *testing.T) {
	c := mustFlat(t, 2, Options{Capacity: 2, Tolerance: 0.5})
	key := vec.Vector{1, 1}
	val := []int{5}
	c.Put(key, val)
	key[0] = 100 // caller reuses buffers
	val[0] = 99
	docs, ok := c.Get(vec.Vector{1, 1})
	if !ok || docs[0] != 5 {
		t.Errorf("cache aliased caller memory: %v, %v", docs, ok)
	}
}

func TestFlatNilQuery(t *testing.T) {
	c := mustFlat(t, 2, Options{Capacity: 2, Tolerance: 1})
	if _, ok := c.Get(nil); ok {
		t.Error("nil query should miss")
	}
	c.Put(nil, []int{1}) // must not panic or insert
	if c.Len() != 0 {
		t.Error("nil Put should be ignored")
	}
}

func TestFlatFIFOEviction(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 0.1, Policy: FIFO})
	c.Put(vec.Vector{0}, []int{0})
	c.Put(vec.Vector{10}, []int{1})
	// Touch the oldest entry; FIFO must ignore recency.
	if _, ok := c.Get(vec.Vector{0}); !ok {
		t.Fatal("warmup hit failed")
	}
	c.Put(vec.Vector{20}, []int{2})
	if _, ok := c.Get(vec.Vector{0}); ok {
		t.Error("FIFO should have evicted the oldest insert despite its recent use")
	}
	if _, ok := c.Get(vec.Vector{10}); !ok {
		t.Error("second insert should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestFlatLRUEviction(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 0.1, Policy: LRU})
	c.Put(vec.Vector{0}, []int{0})
	c.Put(vec.Vector{10}, []int{1})
	// Refresh the older entry; LRU must then evict {10}.
	if _, ok := c.Get(vec.Vector{0}); !ok {
		t.Fatal("warmup hit failed")
	}
	c.Put(vec.Vector{20}, []int{2})
	if _, ok := c.Get(vec.Vector{0}); !ok {
		t.Error("LRU should keep the recently used entry")
	}
	if _, ok := c.Get(vec.Vector{10}); ok {
		t.Error("LRU should have evicted the least recently used entry")
	}
}

func TestFlatEvictionCounters(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 1, Tolerance: 0})
	c.Put(vec.Vector{0}, []int{0})
	c.Put(vec.Vector{1}, []int{1})
	c.Put(vec.Vector{2}, []int{2})
	s := c.Stats()
	if s.Puts != 3 || s.Evictions != 2 {
		t.Errorf("stats = %+v, want 3 puts 2 evictions", s)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestFlatClear(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 3, Tolerance: 1})
	c.Put(vec.Vector{0}, []int{0})
	c.Put(vec.Vector{1}, []int{1})
	before := c.Stats()
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear should empty the cache")
	}
	if got := c.Stats(); got.Puts != before.Puts {
		t.Error("Clear should preserve counters")
	}
	if _, ok := c.Get(vec.Vector{0}); ok {
		t.Error("cleared cache should miss")
	}
	// The cache must remain usable.
	c.Put(vec.Vector{5}, []int{9})
	if docs, ok := c.Get(vec.Vector{5}); !ok || docs[0] != 9 {
		t.Error("cache unusable after Clear")
	}
}

func TestFlatKeysOrder(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 3, Tolerance: 0.1, Policy: LRU})
	c.Put(vec.Vector{0}, nil)
	c.Put(vec.Vector{1}, nil)
	c.Put(vec.Vector{2}, nil)
	if _, ok := c.Get(vec.Vector{0}); !ok { // refresh {0} to the back
		t.Fatal("warmup hit failed")
	}
	keys := c.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	if keys[0][0] != 1 || keys[2][0] != 0 {
		t.Errorf("eviction order = %v, want front=1 back=0", keys)
	}
}

func TestFlatPeek(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 0})
	if _, ok := c.Peek(vec.Vector{0}); ok {
		t.Error("Peek on empty cache should report not-ok")
	}
	c.Put(vec.Vector{3}, nil)
	d, ok := c.Peek(vec.Vector{0})
	if !ok || d != 3 {
		t.Errorf("Peek = %v, %v; want 3, true", d, ok)
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Error("Peek must not affect hit/miss counters")
	}
}

func TestFlatDistCompAccounting(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 10, Tolerance: 100})
	for i := 0; i < 5; i++ {
		c.Put(vec.Vector{float32(i)}, nil)
	}
	if _, ok := c.Get(vec.Vector{0}); !ok {
		t.Fatal("expected a hit")
	}
	if got := c.Stats().DistComps; got != 5 {
		t.Errorf("DistComps = %d, want 5 (one per cached key)", got)
	}
}

// Property: the cache never exceeds its capacity and Len is consistent
// with puts minus evictions under random workloads, for both policies.
func TestFlatCapacityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		capacity := 1 + int(r.Uint64()%20)
		policy := FIFO
		if r.Uint64()%2 == 0 {
			policy = LRU
		}
		c, err := NewFlat(2, Options{
			Capacity:  capacity,
			Tolerance: float32(r.Float64() * 3),
			Policy:    policy,
		})
		if err != nil {
			return false
		}
		ops := 100 + int(r.Uint64()%200)
		for i := 0; i < ops; i++ {
			v := vec.RandomGaussian(r, 2)
			if r.Uint64()%2 == 0 {
				c.Put(v, []int{i})
			} else {
				c.Get(v)
			}
			if c.Len() > capacity {
				return false
			}
		}
		s := c.Stats()
		return int64(c.Len()) == s.Puts-s.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every hit returns the value of a key within tolerance — the
// approximate-cache contract. Verified by re-checking with Peek.
func TestFlatHitImpliesWithinTolerance(t *testing.T) {
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		tol := float32(r.Float64() * 2)
		c, err := NewFlat(3, Options{Capacity: 16, Tolerance: tol})
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			c.Put(vec.RandomGaussian(r, 3), []int{i})
		}
		for i := 0; i < 30; i++ {
			q := vec.RandomGaussian(r, 3)
			d, any := c.Peek(q)
			_, hit := c.Get(q)
			if !any {
				return !hit
			}
			if hit != (d <= tol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFlatConcurrentAccess(t *testing.T) {
	c := mustFlat(t, 4, Options{Capacity: 64, Tolerance: 0.5, Policy: LRU})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := vec.NewRand(uint64(g))
			for i := 0; i < 500; i++ {
				v := vec.RandomGaussian(r, 4)
				if i%3 == 0 {
					c.Put(v, []int{i})
				} else {
					c.Get(v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("capacity exceeded under concurrency: %d", c.Len())
	}
	s := c.Stats()
	if s.Lookups()+s.Puts == 0 {
		t.Error("no operations recorded")
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	if s.Lookups() != 4 {
		t.Errorf("Lookups = %d", s.Lookups())
	}
}

func TestPolicyStringAndParse(t *testing.T) {
	if FIFO.String() != "fifo" || LRU.String() != "lru" {
		t.Error("policy strings wrong")
	}
	if Policy(7).String() != "policy(7)" {
		t.Error("unknown policy string wrong")
	}
	if p, err := ParsePolicy("fifo"); err != nil || p != FIFO {
		t.Error("ParsePolicy fifo failed")
	}
	if p, err := ParsePolicy("lru"); err != nil || p != LRU {
		t.Error("ParsePolicy lru failed")
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("unknown policy should error")
	}
}
