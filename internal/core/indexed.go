package core

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"proximity/internal/hnsw"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// IndexedOptions configures Proximity-INDEXED: the cache options shared
// with the flat variant plus the graph-index knobs.
type IndexedOptions struct {
	// Capacity, Tolerance, Metric, Policy mirror Options.
	Capacity  int
	Tolerance float32
	Metric    vec.Metric
	Policy    Policy

	// Crossover is the resident-entry count below which Get falls back
	// to an exact linear scan: graph traversal has fixed overhead
	// (greedy descent, beam bookkeeping) that a small scan beats.
	// Defaults to 128; see the ROADMAP guidance for tuning.
	Crossover int
	// EfSearch is the graph beam width per lookup — the candidate pool
	// that gets exactly re-ranked. Defaults to 48. Raise it to close
	// any hit-rate gap to the flat scan, lower it for latency.
	EfSearch int
	// M and EfConstruction tune graph construction (hnsw.Config);
	// zero values take the hnsw defaults.
	M              int
	EfConstruction int
	// Seed drives the graph's layer assignment.
	Seed uint64

	// Maintenance, when non-nil, schedules incremental graph repair on
	// the Put path: churn (eviction + reinsert) leaves mildly degraded
	// neighborhoods queued inside the graph, and a maintenance pass
	// re-links a bounded batch of them whenever churn pressure crosses
	// the configured trigger. Nil disables background repair; in-edge
	// severing at slot reuse (the main recall fix) stays on regardless.
	Maintenance *MaintenanceOptions
	// Telemetry, when set, observes maintenance passes under the
	// graph_repair stage.
	Telemetry *telemetry.Telemetry
	// DisableInEdgeRepair restores the pre-repair reuse behavior (stale
	// in-edges survive slot recycling). Benchmark baseline only — it
	// re-introduces the churn recall decay this option exists to fix.
	DisableInEdgeRepair bool
	// OnEvict observes capacity evictions (see Options.OnEvict): the
	// victim's key/docs slices are handed over instead of discarded.
	// Runs under the cache lock; must not call back into the cache.
	OnEvict func(Entry)
}

// MaintenanceOptions tunes the incremental repair schedule. Zero values
// take the defaults noted per field.
type MaintenanceOptions struct {
	// Every triggers a repair pass after this many slot reuses since the
	// last pass. Default 64.
	Every int
	// Budget caps the nodes re-linked per pass — the Put-path latency
	// bound. Default 16.
	Budget int
	// TombstoneRatio additionally triggers a pass when the graph's
	// tombstone fraction reaches this value and repair work is pending.
	// 0 disables the ratio trigger (the evict-then-insert cache keeps
	// the ratio near zero in steady state; the trigger matters for
	// delete-heavy external drivers).
	TombstoneRatio float64
}

func (m *MaintenanceOptions) fillDefaults() {
	if m.Every == 0 {
		m.Every = 64
	}
	if m.Budget == 0 {
		m.Budget = 16
	}
}

func (o *IndexedOptions) fillDefaults() {
	if o.Metric == 0 {
		o.Metric = vec.L2Distance
	}
	if o.Policy == 0 {
		o.Policy = FIFO
	}
	if o.Crossover == 0 {
		o.Crossover = 128
	}
	if o.EfSearch == 0 {
		o.EfSearch = 48
	}
	if o.Maintenance != nil {
		o.Maintenance.fillDefaults()
	}
}

func (o IndexedOptions) validate() error {
	if err := (Options{
		Capacity:  o.Capacity,
		Tolerance: o.Tolerance,
		Metric:    o.Metric,
		Policy:    o.Policy,
	}).validate(); err != nil {
		return err
	}
	if o.Crossover < 0 {
		return fmt.Errorf("core: crossover must be non-negative, got %d", o.Crossover)
	}
	if o.EfSearch < 1 {
		return fmt.Errorf("core: efSearch must be positive, got %d", o.EfSearch)
	}
	if m := o.Maintenance; m != nil {
		if m.Every < 1 {
			return fmt.Errorf("core: maintenance Every must be positive, got %d", m.Every)
		}
		if m.Budget < 1 {
			return fmt.Errorf("core: maintenance Budget must be positive, got %d", m.Budget)
		}
		if m.TombstoneRatio < 0 || m.TombstoneRatio > 1 {
			return fmt.Errorf("core: maintenance TombstoneRatio must be in [0,1], got %v", m.TombstoneRatio)
		}
	}
	return nil
}

// IndexedCache is Proximity-INDEXED: the Algorithm 1 cache with its
// similarity lookup served by an HNSW graph over the cached keys instead
// of a linear scan. The graph stores int8 scalar-quantized copies of the
// keys and ranks traversal with asymmetric quantized kernels (vec.
// Quantized); the EfSearch candidates it returns are then re-ranked with
// the exact float32 metric, and ONLY exact distances are compared against
// per-entry tolerances — so a hit here admits exactly the entries a flat
// scan would, the approximation affecting recall (which candidates are
// seen), never admission correctness.
//
// Eviction (FIFO or LRU) tombstones the victim's graph node; tombstoned
// slots are reused by later inserts, so steady-state churn keeps the
// graph at capacity size without rebuilds. Below Crossover resident
// entries, lookups use an exact linear scan — the graph's fixed traversal
// overhead only pays off once the scan is longer than the beam.
type IndexedCache struct {
	dim  int
	opts IndexedOptions
	dist vec.DistanceFunc

	mu      sync.Mutex
	graph   *hnsw.Index
	entries []*indexedEntry // by graph slot id; nil = tombstoned slot
	live    int
	order   *list.List // eviction order; front = next to evict
	stats   Stats

	reranks     int64 // exact re-rank distance computations (graph path)
	bruteScans  int64 // lookups served by the sub-crossover linear scan
	repairNanos int64 // cumulative time spent in scheduled maintenance passes
	candBuf     []vec.Scored
}

type indexedEntry struct {
	id   int // graph slot id
	key  vec.Vector
	docs []int
	tol  float32
	elem *list.Element // position in eviction order; Value is *indexedEntry
}

var (
	_ Cache       = (*IndexedCache)(nil)
	_ EntrySource = (*IndexedCache)(nil)
)

// NewIndexed creates a Proximity-INDEXED cache for dim-dimensional query
// embeddings.
func NewIndexed(dim int, opts IndexedOptions) (*IndexedCache, error) {
	opts.fillDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: dimension must be positive, got %d", dim)
	}
	c := &IndexedCache{
		dim:   dim,
		opts:  opts,
		dist:  opts.Metric.Func(),
		order: list.New(),
	}
	var err error
	if c.graph, err = c.newGraph(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *IndexedCache) newGraph() (*hnsw.Index, error) {
	return hnsw.New(c.dim, c.opts.Metric, hnsw.Config{
		M:                   c.opts.M,
		EfConstruction:      c.opts.EfConstruction,
		EfSearch:            c.opts.EfSearch,
		Seed:                c.opts.Seed,
		Quantized:           true,
		DisableInEdgeRepair: c.opts.DisableInEdgeRepair,
	})
}

// Get returns the documents of the closest cached entry whose tolerance
// admits q. Large caches route through the graph; below the crossover an
// exact linear scan is cheaper.
//
//proximity:hotpath
func (c *IndexedCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil || len(q) != c.dim {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var best *indexedEntry
	switch {
	case c.live == 0:
		// nothing cached
	case c.live < c.opts.Crossover:
		c.bruteScans++
		best = c.scanExact(q)
	default:
		best = c.searchGraph(q)
	}
	if best == nil {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if c.opts.Policy == LRU {
		c.order.MoveToBack(best.elem)
	}
	//proximity:allow hotpathalloc the budgeted caller-owned docs copy (Get's one allocation)
	out := make([]int, len(best.docs))
	copy(out, best.docs)
	return out, true
}

// TierGet is the two-phase hot-tier lookup (see TierCache): the Get
// candidate search without hit/miss counting or LRU refresh, plus a
// deferred Commit applying those side effects. The graph path's recall
// caveat carries over: a candidate the beam misses is a miss here too.
//
//proximity:hotpath
func (c *IndexedCache) TierGet(q vec.Vector) (TierHit, bool) {
	if q == nil || len(q) != c.dim {
		return TierHit{}, false
	}
	c.mu.Lock()
	var best *indexedEntry
	switch {
	case c.live == 0:
		// nothing cached
	case c.live < c.opts.Crossover:
		c.bruteScans++
		best = c.scanExact(q)
	default:
		best = c.searchGraph(q)
	}
	if best == nil {
		c.mu.Unlock()
		return TierHit{}, false
	}
	// Re-derive the winning exact distance (the scans don't return it);
	// one uncharged computation against the already-chosen entry.
	d := c.dist(q, best.key)
	//proximity:allow hotpathalloc the budgeted caller-owned docs copy (TierGet's one allocation)
	docs := append([]int(nil), best.docs...)
	elem := best.elem
	c.mu.Unlock()
	return TierHit{Docs: docs, Dist: d, src: c, elem: elem}, true
}

// commitTierHit applies a won TierGet's deferred side effects: the hit
// count and, under LRU, the recency refresh. MoveToBack no-ops if the
// entry was evicted between the lookup and the commit.
func (c *IndexedCache) commitTierHit(elem *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Hits++
	if c.opts.Policy == LRU {
		c.order.MoveToBack(elem)
	}
}

// scanExact is the sub-crossover fallback: an exact scan over live slots
// in ascending slot order (ties keep the lowest slot, deterministic).
func (c *IndexedCache) scanExact(q vec.Vector) *indexedEntry {
	var best *indexedEntry
	var bestDist float32
	for _, e := range c.entries {
		if e == nil {
			continue
		}
		d := c.dist(q, e.key)
		if d <= e.tol && (best == nil || d < bestDist) {
			best, bestDist = e, d
		}
	}
	c.stats.DistComps += int64(c.live)
	return best
}

// searchGraph runs the quantized beam search and exactly re-ranks every
// returned candidate. Admission (d ≤ tol) is decided on exact distances
// only; quantized distances merely chose which candidates to look at.
func (c *IndexedCache) searchGraph(q vec.Vector) *indexedEntry {
	hopsBefore := c.graph.Hops()
	ef := c.opts.EfSearch
	found, err := c.graph.SearchInto(c.candBuf[:0], q, ef, ef)
	if err != nil {
		// Len()>0 and dim was checked; unreachable, but fail safe
		// toward a miss rather than a panic.
		return nil
	}
	c.candBuf = found[:0]
	var best *indexedEntry
	var bestDist float32
	for _, cand := range found {
		e := c.entries[cand.ID]
		if e == nil {
			continue // tombstones are excluded by the graph; belt and braces
		}
		d := c.dist(q, e.key)
		if d > e.tol {
			continue
		}
		if best == nil || d < bestDist || (d == bestDist && e.id < best.id) {
			best, bestDist = e, d
		}
	}
	c.reranks += int64(len(found))
	c.stats.DistComps += c.graph.Hops() - hopsBefore + int64(len(found))
	return best
}

// Put inserts under the cache-wide tolerance, evicting if necessary.
func (c *IndexedCache) Put(q vec.Vector, docs []int) {
	c.PutWithTolerance(q, docs, c.opts.Tolerance)
}

// PutWithTolerance inserts an entry with its own match threshold. The key
// is cloned once; the graph and the cache line share the clone.
func (c *IndexedCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil || len(q) != c.dim || tol < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.live >= c.opts.Capacity {
		c.evictLocked()
	}
	key := vec.Clone(q)
	id, err := c.graph.Insert(key)
	if err != nil {
		return // dim checked above; unreachable
	}
	for len(c.entries) <= id {
		c.entries = append(c.entries, nil)
	}
	e := &indexedEntry{
		id:   id,
		key:  key,
		docs: append([]int(nil), docs...),
		tol:  tol,
	}
	e.elem = c.order.PushBack(e)
	c.entries[id] = e
	c.live++
	c.stats.Puts++
	c.maybeMaintainLocked()
}

// maybeMaintainLocked runs one budgeted repair pass when churn pressure
// crosses the configured trigger. Called with c.mu held, so the pass is
// serialized against every other graph mutation for free; the Budget cap
// bounds how long this Put holds the lock.
func (c *IndexedCache) maybeMaintainLocked() {
	m := c.opts.Maintenance
	if m == nil {
		return
	}
	due := c.graph.ReusedSinceRepair() >= m.Every
	if !due && m.TombstoneRatio > 0 {
		due = c.graph.TombstoneRatio() >= m.TombstoneRatio && c.graph.PendingRepair() > 0
	}
	if !due {
		return
	}
	start := time.Now()
	c.graph.Repair(m.Budget)
	d := time.Since(start)
	c.repairNanos += int64(d)
	c.opts.Telemetry.ObserveStage(telemetry.StageGraphRepair, d)
}

// Maintain runs repair passes until the graph's pending-repair queue is
// drained or budget nodes have been examined (budget <= 0 drains fully).
// Useful before a latency-sensitive phase or in tests; the scheduled
// path (IndexedOptions.Maintenance) normally makes this unnecessary.
func (c *IndexedCache) Maintain(budget int) hnsw.RepairStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if budget <= 0 {
		budget = c.graph.PendingRepair()
	}
	if budget == 0 {
		return hnsw.RepairStats{}
	}
	start := time.Now()
	st := c.graph.Repair(budget)
	d := time.Since(start)
	c.repairNanos += int64(d)
	c.opts.Telemetry.ObserveStage(telemetry.StageGraphRepair, d)
	return st
}

func (c *IndexedCache) evictLocked() {
	front := c.order.Front()
	if front == nil {
		return
	}
	victim, ok := front.Value.(*indexedEntry)
	if !ok {
		panic(fmt.Sprintf("core: unexpected eviction list element %T", front.Value))
	}
	c.order.Remove(front)
	if err := c.graph.Delete(victim.id); err != nil {
		panic(fmt.Sprintf("core: graph/cache desync on evict: %v", err))
	}
	c.entries[victim.id] = nil
	c.live--
	c.stats.Evictions++
	if c.opts.OnEvict != nil {
		// The graph holds a quantized copy of the key, not the victim's
		// float32 slice, so handing the slices over transfers ownership.
		c.opts.OnEvict(Entry{Key: victim.key, Docs: victim.docs, Tol: victim.tol})
	}
}

// Len returns the number of cached entries.
func (c *IndexedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// Capacity returns the configured capacity.
func (c *IndexedCache) Capacity() int { return c.opts.Capacity }

// Tolerance returns the cache-wide similarity threshold τ.
func (c *IndexedCache) Tolerance() float32 { return c.opts.Tolerance }

// Policy returns the eviction policy.
func (c *IndexedCache) Policy() Policy { return c.opts.Policy }

// SetEfSearch retunes the lookup beam width at runtime — the
// recall-vs-latency knob. Wider beams recover graph recall on hard
// (high-dimensional, unclustered) key distributions without a rebuild.
// Values below 1 are ignored.
func (c *IndexedCache) SetEfSearch(ef int) {
	if ef < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts.EfSearch = ef
}

// EfSearch returns the current lookup beam width.
func (c *IndexedCache) EfSearch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.EfSearch
}

// Stats returns a snapshot of the counters. DistComps counts graph hops
// plus exact re-ranks plus fallback scans — the all-in distance work of
// lookups, comparable to the flat scan's counter.
func (c *IndexedCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// IndexStats describes the graph behind an indexed cache.
type IndexStats struct {
	// Nodes is the live graph node count (== cache Len).
	Nodes int `json:"nodes"`
	// Slots is live + tombstoned graph slots.
	Slots int `json:"slots"`
	// Tombstones is the deleted-awaiting-reuse slot count.
	Tombstones int `json:"tombstones"`
	// GraphHops is the cumulative traversal distance evaluations.
	GraphHops int64 `json:"graph_hops"`
	// Reranks is the cumulative exact re-rank distance evaluations.
	Reranks int64 `json:"reranks"`
	// BruteScans is the number of lookups served by the sub-crossover
	// exact scan instead of the graph.
	BruteScans int64 `json:"brute_scans"`
	// Searches is the number of graph traversals performed.
	Searches int64 `json:"searches"`

	// ReusedSlots counts evicted slots recycled for new entries.
	ReusedSlots int64 `json:"reused_slots,omitempty"`
	// SeveredInEdges counts stale incoming edges cut at slot reuse.
	SeveredInEdges int64 `json:"severed_in_edges,omitempty"`
	// ReroutedInEdges counts severed edges replaced in place with an
	// edge to the evictee's nearest surviving neighbor.
	ReroutedInEdges int64 `json:"rerouted_in_edges,omitempty"`
	// DroppedInRefs counts reverse refs lost to the per-slot bound;
	// those edges survive the slot's next reuse untracked.
	DroppedInRefs int64 `json:"dropped_in_refs,omitempty"`
	// RepairPasses / RepairedNodes count incremental maintenance passes
	// and the neighborhoods they re-linked.
	RepairPasses  int64 `json:"repair_passes,omitempty"`
	RepairedNodes int64 `json:"repaired_nodes,omitempty"`
	// PendingRepair is the current depth of the repair queue.
	PendingRepair int `json:"pending_repair,omitempty"`
	// RepairNanos is the cumulative wall time spent in maintenance.
	RepairNanos int64 `json:"repair_nanos,omitempty"`
}

// Merge accumulates other into s (used by sharded aggregation).
func (s *IndexStats) Merge(other IndexStats) {
	s.Nodes += other.Nodes
	s.Slots += other.Slots
	s.Tombstones += other.Tombstones
	s.GraphHops += other.GraphHops
	s.Reranks += other.Reranks
	s.BruteScans += other.BruteScans
	s.Searches += other.Searches
	s.ReusedSlots += other.ReusedSlots
	s.SeveredInEdges += other.SeveredInEdges
	s.ReroutedInEdges += other.ReroutedInEdges
	s.DroppedInRefs += other.DroppedInRefs
	s.RepairPasses += other.RepairPasses
	s.RepairedNodes += other.RepairedNodes
	s.PendingRepair += other.PendingRepair
	s.RepairNanos += other.RepairNanos
}

// IndexStatser is implemented by caches backed by a graph index; the
// server surfaces these in /v1/stats.
type IndexStatser interface {
	IndexStats() IndexStats
}

var _ IndexStatser = (*IndexedCache)(nil)

// IndexStats returns a snapshot of the graph-side counters.
func (c *IndexedCache) IndexStats() IndexStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.graph.Maintenance()
	return IndexStats{
		Nodes:           c.live,
		Slots:           c.graph.Slots(),
		Tombstones:      c.graph.Tombstones(),
		GraphHops:       c.graph.Hops(),
		Reranks:         c.reranks,
		BruteScans:      c.bruteScans,
		Searches:        c.graph.Searches(),
		ReusedSlots:     m.ReusedSlots,
		SeveredInEdges:  m.SeveredInEdges,
		ReroutedInEdges: m.ReroutedInEdges,
		DroppedInRefs:   m.DroppedInRefs,
		RepairPasses:    m.RepairPasses,
		RepairedNodes:   m.RepairedNodes,
		PendingRepair:   m.PendingRepair,
		RepairNanos:     c.repairNanos,
	}
}

// Clear drops all entries and rebuilds an empty graph (same seed and
// parameters), preserving counters.
func (c *IndexedCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	graph, err := c.newGraph()
	if err != nil {
		panic(fmt.Sprintf("core: rebuilding graph with validated config: %v", err))
	}
	c.graph = graph
	c.entries = nil
	c.live = 0
	c.order.Init()
}

// Entries returns copies of the cached lines in eviction order (front
// first). Implements EntrySource so the shard migrator can move lines
// between indexed sub-caches.
func (c *IndexedCache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.live)
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*indexedEntry)
		if !ok {
			panic(fmt.Sprintf("core: unexpected eviction list element %T", el.Value))
		}
		out = append(out, Entry{
			Key:  vec.Clone(e.key),
			Docs: append([]int(nil), e.docs...),
			Tol:  e.tol,
		})
	}
	return out
}

// Keys returns copies of the cached key embeddings in eviction order
// (front first). Diagnostic; O(c·d).
func (c *IndexedCache) Keys() []vec.Vector {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]vec.Vector, 0, c.live)
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*indexedEntry)
		if !ok {
			panic(fmt.Sprintf("core: unexpected eviction list element %T", el.Value))
		}
		out = append(out, vec.Clone(e.key))
	}
	return out
}
