package core

import (
	"testing"
	"time"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// lineDB builds a flat index over n points at positions {0, 1, ..., n-1}
// on a 1-D line, which makes nearest-neighbor results easy to reason
// about.
func lineDB(t *testing.T, n int) *vectordb.FlatIndex {
	t.Helper()
	db, err := vectordb.NewFlatIndex(1, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Add(vec.Vector{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestNewCachedRetrieverValidation(t *testing.T) {
	db := lineDB(t, 4)
	cache := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 1})
	tests := []struct {
		name  string
		cache Cache
		db    vectordb.DB
		opts  RetrieverOptions
	}{
		{name: "nil db", cache: cache, db: nil, opts: RetrieverOptions{K: 1}},
		{name: "zero K", cache: cache, db: db, opts: RetrieverOptions{K: 0}},
		{name: "negative rerank", cache: cache, db: db, opts: RetrieverOptions{K: 1, Rerank: -1}},
		{name: "rerank without source", cache: cache, db: db, opts: RetrieverOptions{K: 1, Rerank: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCachedRetriever(tt.cache, tt.db, tt.opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRetrieveMissThenHit(t *testing.T) {
	db := lineDB(t, 10)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 0.5})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}

	first, err := r.Retrieve(vec.Vector{2.1})
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Error("first retrieval must miss")
	}
	wantDocs := []int{2, 3, 1} // closest to 2.1
	for i, want := range wantDocs {
		if first.Docs[i] != want {
			t.Fatalf("miss docs = %v, want %v", first.Docs, wantDocs)
		}
	}

	second, err := r.Retrieve(vec.Vector{2.3}) // within τ of 2.1
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Error("similar retrieval should hit")
	}
	for i, want := range wantDocs {
		if second.Docs[i] != want {
			t.Fatalf("hit docs = %v, want cached %v", second.Docs, wantDocs)
		}
	}
	if got := cache.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("cache stats = %+v", got)
	}
}

func TestRetrieveNoCacheBaseline(t *testing.T) {
	db := lineDB(t, 5)
	r, err := NewCachedRetriever(nil, db, RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := r.Retrieve(vec.Vector{1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit {
			t.Error("no-cache baseline can never hit")
		}
		if res.CacheTime != 0 {
			t.Error("no cache time expected without a cache")
		}
		if len(res.Docs) != 2 {
			t.Errorf("docs = %v", res.Docs)
		}
	}
}

func TestRetrieveSimulatedLatency(t *testing.T) {
	db := lineDB(t, 5)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 0.5})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{
		K:       1,
		Latency: vectordb.FixedLatency(80 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	miss, err := r.Retrieve(vec.Vector{1})
	if err != nil {
		t.Fatal(err)
	}
	if miss.DBTime != 80*time.Millisecond {
		t.Errorf("miss DBTime = %v", miss.DBTime)
	}
	if miss.Total() < miss.DBTime {
		t.Error("Total must include DBTime")
	}
	hit, err := r.Retrieve(vec.Vector{1.1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit {
		t.Fatal("expected hit")
	}
	if hit.DBTime != 0 {
		t.Errorf("hit DBTime = %v, want 0 (database bypassed)", hit.DBTime)
	}
}

func TestRetrieveRerank(t *testing.T) {
	// ρ = 2, K = 2: the miss stores 4 candidates; a later hit from a
	// shifted query must re-rank and return the 2 best for the *new*
	// query, not the original one.
	db := lineDB(t, 20)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 3})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 2, Rerank: 2, Source: db})
	if err != nil {
		t.Fatal(err)
	}
	miss, err := r.Retrieve(vec.Vector{5})
	if err != nil {
		t.Fatal(err)
	}
	// Four nearest to q=5 are {5, 4, 6, 3} (3 beats 7 on the ID
	// tie-break at distance 2); returned top-2 for q=5 is [5 4].
	if len(miss.Docs) != 2 || miss.Docs[0] != 5 || miss.Docs[1] != 4 {
		t.Fatalf("miss docs = %v, want [5 4]", miss.Docs)
	}

	hit, err := r.Retrieve(vec.Vector{6.6})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit {
		t.Fatal("expected hit at distance 1.6 ≤ τ=3")
	}
	// Stored candidates for q=5 are {5,4,6,3}. Re-ranked against 6.6
	// the best two are 6 (0.6 away) and 5 (1.6 away) — different from
	// the cached order, which proves re-ranking ran.
	if len(hit.Docs) != 2 || hit.Docs[0] != 6 || hit.Docs[1] != 5 {
		t.Errorf("re-ranked docs = %v, want [6 5]", hit.Docs)
	}
}

func TestRetrieveRerankOneKeepsDBOrder(t *testing.T) {
	db := lineDB(t, 10)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 3})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 2, Rerank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrieve(vec.Vector{5}); err != nil {
		t.Fatal(err)
	}
	hit, err := r.Retrieve(vec.Vector{6.4})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit {
		t.Fatal("expected hit")
	}
	// Without re-ranking the cached order for q=5 is returned as-is.
	if hit.Docs[0] != 5 || hit.Docs[1] != 4 {
		t.Errorf("docs = %v, want [5 4] (original order)", hit.Docs)
	}
}

func TestRetrieveErrors(t *testing.T) {
	db := lineDB(t, 3)
	cache := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 1})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrieve(nil); err == nil {
		t.Error("nil query should error")
	}
	// Dimension mismatch propagates from the database.
	if _, err := r.Retrieve(vec.Vector{1, 2}); err == nil {
		t.Error("dim mismatch should error")
	}
	// The failed retrieval must not have polluted the cache.
	if cache.Len() != 0 {
		t.Error("failed retrieval should not insert into the cache")
	}
}

func TestRetrieveEmptyDBError(t *testing.T) {
	db, err := vectordb.NewFlatIndex(1, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewCachedRetriever(nil, db, RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retrieve(vec.Vector{0}); err == nil {
		t.Error("empty database should surface an error")
	}
}

func TestRetrieverAccessors(t *testing.T) {
	db := lineDB(t, 3)
	cache := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 1})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 2, Rerank: 2, Source: db})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache() != Cache(cache) || r.DB() != vectordb.DB(db) {
		t.Error("accessors should return wired components")
	}
	if r.K() != 2 || r.Rerank() != 2 {
		t.Error("K/Rerank accessors wrong")
	}
}

func TestRetrieveWithLSHCache(t *testing.T) {
	// End-to-end: the LSH variant must serve repeated similar queries
	// from the cache just like the flat one.
	db, err := vectordb.NewFlatIndex(16, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(21)
	for i := 0; i < 200; i++ {
		if err := db.Add(vec.RandomGaussian(rng, 16)); err != nil {
			t.Fatal(err)
		}
	}
	cache := mustLSH(t, 16, LSHOptions{Bits: 6, Tolerance: 0.5, Seed: 22})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.RandomGaussian(rng, 16)
	first, err := r.Retrieve(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Retrieve(vec.GaussianAround(rng, q, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Hit {
		t.Fatal("nearby repeat should hit the LSH cache")
	}
	for i := range first.Docs {
		if first.Docs[i] != again.Docs[i] {
			t.Errorf("hit docs %v differ from original %v", again.Docs, first.Docs)
		}
	}
}
