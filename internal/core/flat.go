package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"proximity/internal/vec"
)

// FlatCache is Proximity-FLAT (§3.1, Algorithm 1): every lookup linearly
// scans all cached keys, returning the stored documents of the closest key
// when it lies within the tolerance. The scan makes lookups exact with
// respect to the cached set but costs O(c·d) per query, which Fig. 10 of
// the paper shows becoming prohibitive beyond a few thousand entries —
// the motivation for LSHCache.
type FlatCache struct {
	dim  int
	opts Options
	dist vec.DistanceFunc

	mu      sync.RWMutex
	entries []*flatEntry
	order   *list.List // eviction order; front = next to evict
	stats   Stats
	// distComps is accounted atomically (not under mu) so read-only
	// scans — Peek/PeekAdmissible under RLock — can run concurrently
	// while still charging their distance computations.
	distComps atomic.Int64
}

type flatEntry struct {
	key  vec.Vector
	docs []int
	tol  float32       // per-entry tolerance; the match threshold for this line
	elem *list.Element // position in eviction order; Value is *flatEntry
	idx  int           // position in entries (for O(1) removal)
}

var _ Cache = (*FlatCache)(nil)

// NewFlat creates a Proximity-FLAT cache for dim-dimensional query
// embeddings.
func NewFlat(dim int, opts Options) (*FlatCache, error) {
	opts.fillDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: dimension must be positive, got %d", dim)
	}
	return &FlatCache{
		dim:   dim,
		opts:  opts,
		dist:  opts.Metric.Func(),
		order: list.New(),
	}, nil
}

// Get scans all cached keys and returns the documents of the closest one
// within its tolerance (lines 2-5 of Algorithm 1). Entries inserted with
// Put use the cache-wide τ; PutWithTolerance entries use their own. Under
// LRU the matched entry's recency is refreshed.
//
//proximity:hotpath
func (c *FlatCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	scan := c.scanLocked(q)
	if scan.admissible == nil {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if c.opts.Policy == LRU {
		c.order.MoveToBack(scan.admissible.elem)
	}
	//proximity:allow hotpathalloc the budgeted caller-owned docs copy (Get's one allocation)
	out := make([]int, len(scan.admissible.docs))
	copy(out, scan.admissible.docs)
	return out, true
}

// Peek reports the distance to the closest cached key without affecting
// recency or hit/miss counters (the scan's distance computations are
// still charged). Used by multi-probe lookups, diagnostics, and tests.
// Peek mutates nothing, so it takes only a read lock: concurrent
// multi-probe bucket rankings scan in parallel instead of serializing.
func (c *FlatCache) Peek(q vec.Vector) (dist float32, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	scan := c.scanLocked(q)
	if scan.closest == nil {
		return 0, false
	}
	return scan.closestDist, true
}

// PeekAdmissible reports the distance to the closest cached key whose own
// tolerance admits the query, without affecting recency or hit/miss
// counters. Multi-probe lookups use it to rank candidate buckets; like
// Peek it holds only a read lock, so concurrent rankings don't serialize.
func (c *FlatCache) PeekAdmissible(q vec.Vector) (dist float32, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	scan := c.scanLocked(q)
	if scan.admissible == nil {
		return 0, false
	}
	return scan.admissibleDist, true
}

// TierGet is the two-phase hot-tier lookup (see TierCache): it returns
// the closest admissible entry without counting a hit/miss or touching
// recency, plus a deferred Commit that applies those side effects if
// the tiered cache decides this candidate won. Distance computations
// are charged as usual.
//
//proximity:hotpath
func (c *FlatCache) TierGet(q vec.Vector) (TierHit, bool) {
	if q == nil {
		return TierHit{}, false
	}
	c.mu.RLock()
	scan := c.scanLocked(q)
	if scan.admissible == nil {
		c.mu.RUnlock()
		return TierHit{}, false
	}
	//proximity:allow hotpathalloc the budgeted caller-owned docs copy (TierGet's one allocation)
	docs := append([]int(nil), scan.admissible.docs...)
	elem := scan.admissible.elem
	c.mu.RUnlock()
	return TierHit{Docs: docs, Dist: scan.admissibleDist, src: c, elem: elem}, true
}

// commitTierHit applies a won TierGet's deferred side effects: the hit
// count and, under LRU, the recency refresh. MoveToBack no-ops if the
// entry was evicted between the lookup and the commit (its element left
// the list).
func (c *FlatCache) commitTierHit(elem *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Hits++
	if c.opts.Policy == LRU {
		c.order.MoveToBack(elem)
	}
}

// scanResult carries both views of a linear scan: the globally closest
// entry (diagnostics, Peek) and the closest entry whose own tolerance
// admits the query (the Algorithm 1 match).
type scanResult struct {
	closest        *flatEntry
	closestDist    float32
	admissible     *flatEntry
	admissibleDist float32
}

// scanLocked performs the linear scan, charging one distance computation
// per cached key. Ties keep the first-scanned entry, matching the paper's
// min_by_dist. Callers hold mu at least for reading.
func (c *FlatCache) scanLocked(q vec.Vector) scanResult {
	var res scanResult
	for _, e := range c.entries {
		d := c.dist(q, e.key)
		if res.closest == nil || d < res.closestDist {
			res.closest, res.closestDist = e, d
		}
		if d <= e.tol && (res.admissible == nil || d < res.admissibleDist) {
			res.admissible, res.admissibleDist = e, d
		}
	}
	c.distComps.Add(int64(len(c.entries)))
	return res
}

// Put inserts the query/documents pair under the cache-wide tolerance,
// evicting one entry if the cache is full (lines 7-9 of Algorithm 1).
func (c *FlatCache) Put(q vec.Vector, docs []int) {
	c.PutWithTolerance(q, docs, c.opts.Tolerance)
}

// PutWithTolerance inserts an entry with its own match threshold — the
// per-cache-line dynamic tolerance of Frieder et al. that §3.3.3
// discusses: a line whose original query had tightly-packed neighbors
// should only serve queries very close to it. Callers normally derive
// tol from the retrieved-neighbor distances (see RetrieverOptions.
// DynamicTolerance).
func (c *FlatCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil || tol < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if len(c.entries) >= c.opts.Capacity {
		c.evictLocked()
	}
	e := &flatEntry{
		key:  vec.Clone(q),
		docs: append([]int(nil), docs...),
		tol:  tol,
		idx:  len(c.entries),
	}
	e.elem = c.order.PushBack(e)
	c.entries = append(c.entries, e)
	c.stats.Puts++
}

// evictLocked removes the front of the eviction order: the oldest insert
// under FIFO, the least recently used entry under LRU.
func (c *FlatCache) evictLocked() {
	front := c.order.Front()
	if front == nil {
		return
	}
	victim, ok := front.Value.(*flatEntry)
	if !ok {
		// The order list only ever holds *flatEntry; reaching here
		// means internal corruption, so fail loudly.
		panic(fmt.Sprintf("core: unexpected eviction list element %T", front.Value))
	}
	c.order.Remove(front)
	// Swap-remove from the scan slice.
	last := len(c.entries) - 1
	c.entries[victim.idx] = c.entries[last]
	c.entries[victim.idx].idx = victim.idx
	c.entries = c.entries[:last]
	c.stats.Evictions++
	if c.opts.OnEvict != nil {
		// Ownership transfer: the victim's slices are unreachable from
		// the cache now, so the hook keeps them without copying.
		c.opts.OnEvict(Entry{Key: victim.key, Docs: victim.docs, Tol: victim.tol})
	}
}

// Len returns the number of cached entries.
func (c *FlatCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Capacity returns the configured capacity c.
func (c *FlatCache) Capacity() int { return c.opts.Capacity }

// Tolerance returns the configured similarity threshold τ.
func (c *FlatCache) Tolerance() float32 { return c.opts.Tolerance }

// Policy returns the eviction policy.
func (c *FlatCache) Policy() Policy { return c.opts.Policy }

// Stats returns a snapshot of the counters.
func (c *FlatCache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.stats
	s.DistComps = c.distComps.Load()
	return s
}

// Clear drops all entries, preserving counters.
func (c *FlatCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
	c.order.Init()
}

// Entries returns copies of the cached lines in eviction order (front,
// i.e. next to evict, first), so re-inserting them in order reproduces
// the same eviction sequence. Implements EntrySource; O(c·d).
func (c *FlatCache) Entries() []Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Entry, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*flatEntry)
		if !ok {
			panic(fmt.Sprintf("core: unexpected eviction list element %T", el.Value))
		}
		out = append(out, Entry{
			Key:  vec.Clone(e.key),
			Docs: append([]int(nil), e.docs...),
			Tol:  e.tol,
		})
	}
	return out
}

// Keys returns copies of the cached key embeddings in eviction order
// (front first). Diagnostic; O(c·d).
func (c *FlatCache) Keys() []vec.Vector {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]vec.Vector, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		entry, ok := el.Value.(*flatEntry)
		if !ok {
			panic(fmt.Sprintf("core: unexpected eviction list element %T", el.Value))
		}
		out = append(out, vec.Clone(entry.key))
	}
	return out
}
