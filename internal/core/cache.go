// Package core implements Proximity, the paper's approximate key-value
// cache for RAG pipelines. Keys are query embeddings; values are the
// document indices a vector database returned for those queries. A lookup
// succeeds when some cached key lies within a similarity tolerance τ of
// the incoming query, in which case the cached documents are reused and
// the expensive database nearest-neighbor search is skipped (Algorithm 1).
//
// Two variants are provided, matching §3 of the paper:
//
//   - FlatCache (Proximity-FLAT): a single pool scanned linearly on every
//     lookup — exact with respect to the cached set, but O(c·d) per query.
//   - LSHCache (Proximity-LSH): 2^L lazily-allocated buckets selected by a
//     random-hyperplane signature, each a small fixed-capacity flat pool —
//     O((L+b)·d) per query, independent of total capacity.
//
// Both variants support FIFO and LRU eviction and the re-ranking factor ρ
// (§3.3.4) via CachedRetriever. All cache types are safe for concurrent
// use.
package core

import (
	"errors"
	"fmt"

	"proximity/internal/vec"
)

// Policy selects the eviction strategy applied when a cache (or an LSH
// bucket) is full (§3.3.2).
type Policy int

const (
	// FIFO evicts the oldest inserted entry regardless of use.
	FIFO Policy = iota + 1
	// LRU evicts the entry unused for the longest time; cache hits
	// refresh recency.
	LRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a string into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "lru":
		return LRU, nil
	default:
		return 0, fmt.Errorf("core: unknown eviction policy %q", s)
	}
}

// Options configures a cache variant.
type Options struct {
	// Capacity is the maximum number of cached entries c (per bucket
	// for LSHCache, where it is the per-bucket capacity b). Must be
	// positive.
	Capacity int
	// Tolerance is the similarity threshold τ: a lookup hits when the
	// closest cached key is at distance ≤ τ. τ = 0 degenerates to
	// exact matching (§3.3.3). Must be non-negative.
	Tolerance float32
	// Metric is the distance function, which must match the backing
	// vector database (§3.1). Defaults to L2.
	Metric vec.Metric
	// Policy is the eviction strategy. Defaults to FIFO, the paper's
	// default for the uniform benchmarks (§4.3).
	Policy Policy
	// OnEvict, when set, observes every capacity eviction: instead of
	// silently discarding the victim, the cache hands it over — this is
	// the demotion hook the tiered cache (internal/tier) uses to absorb
	// hot-tier evictions into its warm tier. The Entry's key and docs
	// are an ownership transfer of the victim's own slices (never
	// aliased by the cache afterwards), so the hook may retain them
	// without copying. The hook runs under the cache's lock: it must
	// not call back into the cache.
	OnEvict func(Entry)
}

func (o *Options) fillDefaults() {
	if o.Metric == 0 {
		o.Metric = vec.L2Distance
	}
	if o.Policy == 0 {
		o.Policy = FIFO
	}
}

func (o Options) validate() error {
	if o.Capacity <= 0 {
		return fmt.Errorf("core: capacity must be positive, got %d", o.Capacity)
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("core: tolerance must be non-negative, got %v", o.Tolerance)
	}
	if o.Policy != FIFO && o.Policy != LRU {
		return fmt.Errorf("core: unknown eviction policy %d", int(o.Policy))
	}
	return nil
}

// Stats are cumulative cache counters. HitRate is derived.
type Stats struct {
	Hits      int64 // lookups answered from the cache
	Misses    int64 // lookups that fell through to the database
	Puts      int64 // insertions
	Evictions int64 // entries displaced by capacity pressure
	DistComps int64 // key distance computations across all lookups
	HashOps   int64 // LSH hyperplane projections (LSHCache only)
}

// Lookups returns the total number of Get calls.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses }

// HitRate returns Hits / Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Cache is the approximate key-value store interface shared by
// Proximity-FLAT and Proximity-LSH. Implementations are safe for
// concurrent use.
type Cache interface {
	// Get returns the documents cached for the closest key within
	// tolerance, or ok=false on a miss. The returned slice is a copy.
	Get(q vec.Vector) (docs []int, ok bool)
	// Put caches the documents retrieved for query embedding q under
	// the cache-wide tolerance, evicting if necessary. The key and
	// value are copied.
	Put(q vec.Vector, docs []int)
	// PutWithTolerance caches an entry with its own match threshold,
	// the per-line dynamic tolerance extension (§3.3.3). Negative
	// tolerances are ignored.
	PutWithTolerance(q vec.Vector, docs []int, tol float32)
	// Len returns the current number of cached entries.
	Len() int
	// Capacity returns the maximum number of entries (for LSHCache,
	// the theoretical maximum 2^L·b).
	Capacity() int
	// Stats returns a snapshot of the cumulative counters.
	Stats() Stats
	// Clear removes all entries (counters are preserved).
	Clear()
}

// Entry is one cached line as seen through EntrySource: the key
// embedding, its documents, and its per-line match tolerance. All fields
// are copies — holding an Entry never aliases live cache state.
type Entry struct {
	Key  vec.Vector
	Docs []int
	Tol  float32
}

// EntrySource is implemented by caches that can enumerate their contents
// (FlatCache and LSHCache both qualify). The shard migrator depends on
// it: re-drawing the partitioner moves entries between shards, which
// requires reading them out of the sub-caches first. Enumeration order is
// eviction order where the cache defines one, so re-inserting entries in
// the returned order reproduces the same eviction sequence.
type EntrySource interface {
	Entries() []Entry
}

// errNilQuery guards the public entry points.
var errNilQuery = errors.New("core: nil query embedding")
