package core

import (
	"testing"

	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// --- multi-probe LSH ----------------------------------------------------

func TestLSHProbesValidation(t *testing.T) {
	if _, err := NewLSH(8, LSHOptions{Bits: 4, Tolerance: 1, Probes: -1}); err == nil {
		t.Error("negative probes should error")
	}
	c := mustLSH(t, 8, LSHOptions{Bits: 4, Tolerance: 1})
	if c.Probes() != 1 {
		t.Errorf("default probes = %d, want 1", c.Probes())
	}
	capped := mustLSH(t, 8, LSHOptions{Bits: 4, Tolerance: 1, Probes: 100})
	if capped.Probes() != 5 { // base bucket + one flip per bit
		t.Errorf("probes should cap at Bits+1, got %d", capped.Probes())
	}
}

// Multi-probe must recover hits that single-probe loses to hyperplane
// boundaries, and never lose hits single-probe finds.
func TestLSHMultiProbeRecoversBoundaryHits(t *testing.T) {
	const (
		dim    = 64
		bits   = 8
		tol    = 1.0
		pairs  = 300
		radius = 0.08 // relative perturbation: some pairs straddle a plane
	)
	build := func(probes int) *LSHCache {
		return mustLSH(t, dim, LSHOptions{
			Bits: bits, Tolerance: tol, Seed: 42, Probes: probes,
		})
	}
	single, multi := build(1), build(bits+1)

	rng := vec.NewRand(7)
	singleHits, multiHits := 0, 0
	for i := 0; i < pairs; i++ {
		base := vec.Scale(vec.RandomUnit(rng, dim), 10)
		probe := vec.GaussianAround(rng, base, radius)
		single.Put(base, []int{i})
		multi.Put(base, []int{i})
		if _, ok := single.Get(probe); ok {
			singleHits++
		}
		if _, ok := multi.Get(probe); ok {
			multiHits++
		}
	}
	if multiHits <= singleHits {
		t.Errorf("multi-probe should recover boundary hits: single=%d multi=%d", singleHits, multiHits)
	}
	if multiHits < pairs/2 {
		t.Errorf("multi-probe hit count suspiciously low: %d/%d", multiHits, pairs)
	}
}

// A multi-probe hit must return the same documents a flat cache over the
// same inserts would (the closest admissible key wins globally).
func TestLSHMultiProbeMatchesFlatSemantics(t *testing.T) {
	const dim = 16
	multi := mustLSH(t, dim, LSHOptions{Bits: 4, Tolerance: 2, Seed: 9, Probes: 5})
	flat := mustFlat(t, dim, Options{Capacity: 1024, Tolerance: 2})
	rng := vec.NewRand(11)
	for i := 0; i < 200; i++ {
		v := vec.RandomGaussian(rng, dim)
		multi.Put(v, []int{i})
		flat.Put(v, []int{i})
	}
	agreements, multiHitCount := 0, 0
	for i := 0; i < 200; i++ {
		q := vec.RandomGaussian(rng, dim)
		mDocs, mOK := multi.Get(q)
		fDocs, fOK := flat.Get(q)
		if !mOK {
			continue
		}
		multiHitCount++
		if !fOK {
			t.Fatalf("multi-probe hit where flat cache missed")
		}
		if mDocs[0] == fDocs[0] {
			agreements++
		}
	}
	if multiHitCount == 0 {
		t.Skip("no hits at this seed; adjust tolerance")
	}
	// Multi-probe scans only Probes buckets, so it may match a
	// different (slightly farther) entry than the global closest; most
	// hits should still agree.
	if agreements*2 < multiHitCount {
		t.Errorf("multi-probe agreed with flat on only %d/%d hits", agreements, multiHitCount)
	}
}

// --- per-entry (dynamic) tolerance ---------------------------------------

func TestPutWithToleranceFlat(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 5}) // loose global τ
	c.PutWithTolerance(vec.Vector{0}, []int{100}, 0.5)      // tight line
	c.PutWithTolerance(vec.Vector{10}, []int{200}, 4)       // loose line

	// Within the tight line's own tolerance: hit.
	if docs, ok := c.Get(vec.Vector{0.4}); !ok || docs[0] != 100 {
		t.Errorf("query within per-line tolerance should hit: %v %v", docs, ok)
	}
	// Outside the tight line's tolerance but well inside the global τ:
	// miss — the per-line threshold governs.
	if _, ok := c.Get(vec.Vector{2}); ok {
		t.Error("query outside the line's own tolerance must miss")
	}
	// The loose line serves a distant query.
	if docs, ok := c.Get(vec.Vector{7}); !ok || docs[0] != 200 {
		t.Errorf("loose line should serve: %v %v", docs, ok)
	}
}

func TestClosestAdmissibleWins(t *testing.T) {
	// The closest entry has a tolerance excluding the query; a farther
	// admissible entry must serve it instead.
	c := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 10})
	c.PutWithTolerance(vec.Vector{1}, []int{1}, 0.1) // closest, inadmissible
	c.PutWithTolerance(vec.Vector{3}, []int{2}, 5)   // farther, admissible
	docs, ok := c.Get(vec.Vector{0})
	if !ok || docs[0] != 2 {
		t.Errorf("Get = %v %v, want the admissible entry's docs [2]", docs, ok)
	}
}

func TestPutWithToleranceIgnoresNegative(t *testing.T) {
	c := mustFlat(t, 1, Options{Capacity: 2, Tolerance: 1})
	c.PutWithTolerance(vec.Vector{0}, []int{1}, -1)
	if c.Len() != 0 {
		t.Error("negative tolerance insert should be ignored")
	}
}

func TestPutWithToleranceLSH(t *testing.T) {
	c := mustLSH(t, 16, LSHOptions{Bits: 4, Tolerance: 5, Seed: 13})
	rng := vec.NewRand(14)
	base := vec.Scale(vec.RandomUnit(rng, 16), 10)
	c.PutWithTolerance(base, []int{7}, 0.2)
	near := vec.GaussianAround(rng, base, 0.01) // well within 0.2
	if docs, ok := c.Get(near); !ok || docs[0] != 7 {
		t.Errorf("near query should hit the tight line: %v %v", docs, ok)
	}
	far := vec.GaussianAround(rng, base, 0.3) // ~1.2 away, inside global τ=5
	if _, ok := c.Get(far); ok {
		t.Error("query outside the line's tolerance must miss despite the loose global τ")
	}
}

// --- dynamic tolerance through the retriever ------------------------------

func TestRetrieverDynamicTolerance(t *testing.T) {
	// 1-D corpus: a dense cluster near 0 (neighbors packed) and a
	// sparse region near 100 (neighbors far apart).
	db, err := vectordb.NewFlatIndex(1, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	dense := []vec.Vector{{0}, {0.1}, {0.2}, {0.3}}
	sparse := []vec.Vector{{100}, {104}, {108}, {112}}
	if err := db.Add(append(dense, sparse...)...); err != nil {
		t.Fatal(err)
	}
	cache := mustFlat(t, 1, Options{Capacity: 8, Tolerance: 0 /* unused for dynamic puts */})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{
		K:                2,
		DynamicTolerance: 1.0, // tol = distance to the 2nd neighbor
	})
	if err != nil {
		t.Fatal(err)
	}

	// Prime both regions.
	if _, err := r.Retrieve(vec.Vector{0}); err != nil {
		t.Fatal(err) // 2nd neighbor at 0.1 → tol 0.1
	}
	if _, err := r.Retrieve(vec.Vector{100}); err != nil {
		t.Fatal(err) // 2nd neighbor at 104 → tol 4
	}

	// Offset 2: inside the sparse line's tolerance, far outside the
	// dense line's.
	denseProbe, err := r.Retrieve(vec.Vector{2})
	if err != nil {
		t.Fatal(err)
	}
	if denseProbe.Hit {
		t.Error("dense-region probe at offset 2 should miss (line tolerance ≈ 0.1)")
	}
	sparseProbe, err := r.Retrieve(vec.Vector{102})
	if err != nil {
		t.Fatal(err)
	}
	if !sparseProbe.Hit {
		t.Error("sparse-region probe at offset 2 should hit (line tolerance ≈ 4)")
	}
}

func TestDynamicToleranceValues(t *testing.T) {
	r := &CachedRetriever{opts: RetrieverOptions{K: 3, DynamicTolerance: 0.5}}
	scored := []vec.Scored{{ID: 0, Dist: 1}, {ID: 1, Dist: 2}, {ID: 2, Dist: 4}, {ID: 3, Dist: 8}}
	if got := r.dynamicTolerance(scored); got != 2 {
		t.Errorf("dynamicTolerance = %v, want 0.5×4 = 2", got)
	}
	// Fewer results than K: use the farthest.
	if got := r.dynamicTolerance(scored[:2]); got != 1 {
		t.Errorf("dynamicTolerance short = %v, want 0.5×2 = 1", got)
	}
	if got := r.dynamicTolerance(nil); got != 0 {
		t.Errorf("dynamicTolerance empty = %v, want 0", got)
	}
}
