package core

import (
	"context"
	"testing"

	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

// TestRetrieveContextStagesAndSpans verifies that a traced retrieval
// records cache_lookup / db_search / cache_fill spans and that the
// telemetry hub's stage histograms see both the miss and the hit.
func TestRetrieveContextStagesAndSpans(t *testing.T) {
	db := lineDB(t, 10)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 0.5})
	tel := telemetry.New(telemetry.Options{SampleEvery: 1})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 3, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	ctx, trace := tel.StartTrace(context.Background())
	res, err := r.RetrieveContext(ctx, vec.Vector{2.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("first retrieval must miss")
	}
	spans := trace.Spans()
	trace.Finish()
	wantStages := []telemetry.Stage{
		telemetry.StageCacheLookup, telemetry.StageDBSearch, telemetry.StageCacheFill,
	}
	if len(spans) != len(wantStages) {
		t.Fatalf("miss trace has %d spans (%v), want %d", len(spans), spans, len(wantStages))
	}
	for i, want := range wantStages {
		if spans[i].Stage != want {
			t.Errorf("span %d stage = %v, want %v", i, spans[i].Stage, want)
		}
	}

	ctx, trace = tel.StartTrace(context.Background())
	res, err = r.RetrieveContext(ctx, vec.Vector{2.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("similar retrieval should hit")
	}
	spans = trace.Spans()
	trace.Finish()
	if len(spans) != 1 || spans[0].Stage != telemetry.StageCacheLookup {
		t.Fatalf("hit trace spans = %v, want one cache_lookup", spans)
	}

	snap := tel.StageSnapshot()
	if snap[telemetry.StageCacheLookup].N != 2 {
		t.Errorf("cache_lookup observations = %d, want 2", snap[telemetry.StageCacheLookup].N)
	}
	if snap[telemetry.StageDBSearch].N != 1 || snap[telemetry.StageCacheFill].N != 1 {
		t.Errorf("db_search/cache_fill = %d/%d, want 1/1",
			snap[telemetry.StageDBSearch].N, snap[telemetry.StageCacheFill].N)
	}

	// The ring served the two finished traces, newest first.
	recent := tel.Tracer.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring has %d traces, want 2", len(recent))
	}
}

// TestRetrieveUntracedUnchanged pins that the plain Retrieve path with
// no telemetry behaves identically (no spans, no observations, no cost
// beyond nil checks).
func TestRetrieveUntracedUnchanged(t *testing.T) {
	db := lineDB(t, 10)
	cache := mustFlat(t, 1, Options{Capacity: 4, Tolerance: 0.5})
	r, err := NewCachedRetriever(cache, db, RetrieverOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry() != nil {
		t.Fatal("unset telemetry should be nil")
	}
	if _, err := r.Retrieve(vec.Vector{1.0}); err != nil {
		t.Fatal(err)
	}
	res, err := r.Retrieve(vec.Vector{1.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("expected a hit")
	}
}
