package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"proximity/internal/telemetry"
	"proximity/internal/vec"
)

func TestNewIndexedValidation(t *testing.T) {
	if _, err := NewIndexed(0, IndexedOptions{Capacity: 10}); err == nil {
		t.Fatal("expected error for zero dim")
	}
	if _, err := NewIndexed(4, IndexedOptions{Capacity: 0}); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	if _, err := NewIndexed(4, IndexedOptions{Capacity: 10, Tolerance: -1}); err == nil {
		t.Fatal("expected error for negative tolerance")
	}
	if _, err := NewIndexed(4, IndexedOptions{Capacity: 10, Crossover: -1}); err == nil {
		t.Fatal("expected error for negative crossover")
	}
	if _, err := NewIndexed(4, IndexedOptions{Capacity: 10, EfSearch: -1}); err == nil {
		t.Fatal("expected error for negative efSearch")
	}
}

// perturb returns a point at exactly the given L2 distance from v.
func perturb(rng *rand.Rand, v vec.Vector, dist float32) vec.Vector {
	dir := vec.RandomGaussian(rng, len(v))
	dir = vec.Scale(dir, dist/vec.Norm(dir))
	out := vec.Clone(v)
	for i := range out {
		out[i] += dir[i]
	}
	return out
}

// TestIndexedMatchesFlatProperty is the equivalence property test: with a
// beam wide enough to cover the whole graph, the quantized + re-ranked
// indexed lookup must return the SAME hit/miss decision and the SAME
// documents as the exact float32 flat scan — over random queries and
// adversarial queries placed just inside and just outside per-entry
// tolerances. Quantization may reorder candidate discovery, but exact
// re-ranking decides admission, so the observable behavior is identical.
func TestIndexedMatchesFlatProperty(t *testing.T) {
	const (
		dim = 8
		n   = 250
		tau = 0.5
	)
	rng := vec.NewRand(21)
	flat, err := NewFlat(dim, Options{Capacity: n + 10, Tolerance: tau})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndexed(dim, IndexedOptions{
		Capacity:  n + 10,
		Tolerance: tau,
		Crossover: 1,     // force the graph path
		EfSearch:  4 * n, // beam ≥ graph size: full coverage
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]vec.Vector, n)
	tols := make([]float32, n)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, dim), 2)
		tols[i] = tau * float32(rng.Float64())
		docs := []int{i}
		flat.PutWithTolerance(keys[i], docs, tols[i])
		idx.PutWithTolerance(keys[i], docs, tols[i])
	}

	check := func(q vec.Vector, what string) {
		t.Helper()
		fd, fok := flat.Get(q)
		id, iok := idx.Get(q)
		if fok != iok {
			t.Fatalf("%s: flat ok=%v, indexed ok=%v", what, fok, iok)
		}
		if fok && (len(fd) != 1 || len(id) != 1 || fd[0] != id[0]) {
			t.Fatalf("%s: flat docs=%v, indexed docs=%v", what, fd, id)
		}
	}

	// Random queries: a mix of hits and misses.
	for i := 0; i < 300; i++ {
		check(vec.Scale(vec.RandomGaussian(rng, dim), 2), fmt.Sprintf("random %d", i))
	}
	// Adversarial: just inside and just outside each entry's own
	// tolerance, where a quantization-perturbed admission would differ.
	for i, k := range keys {
		if tols[i] == 0 {
			continue
		}
		check(perturb(rng, k, tols[i]*0.99), fmt.Sprintf("inside entry %d", i))
		check(perturb(rng, k, tols[i]*1.01), fmt.Sprintf("outside entry %d", i))
	}
	s := idx.IndexStats()
	if s.Searches == 0 || s.Reranks == 0 {
		t.Fatalf("graph path not exercised: %+v", s)
	}
}

// TestIndexedRecallFloor checks the default-beam indexed cache keeps at
// least 90% of the flat scan's hits on a within-tolerance workload.
func TestIndexedRecallFloor(t *testing.T) {
	const (
		dim = 16
		n   = 1500
		tau = 0.4
	)
	rng := vec.NewRand(23)
	flat, err := NewFlat(dim, Options{Capacity: n + 10, Tolerance: tau})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndexed(dim, IndexedOptions{Capacity: n + 10, Tolerance: tau, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]vec.Vector, n)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomGaussian(rng, dim), 2)
		flat.Put(keys[i], []int{i})
		idx.Put(keys[i], []int{i})
	}
	flatHits, idxHits := 0, 0
	for i := 0; i < 500; i++ {
		q := perturb(rng, keys[rng.IntN(n)], tau*float32(rng.Float64()))
		if _, ok := flat.Get(q); ok {
			flatHits++
		}
		if _, ok := idx.Get(q); ok {
			idxHits++
		}
	}
	if flatHits == 0 {
		t.Fatal("flat scan found no hits; workload is broken")
	}
	if recall := float64(idxHits) / float64(flatHits); recall < 0.9 {
		t.Fatalf("indexed hits %d / flat hits %d = %.3f, want ≥ 0.9", idxHits, flatHits, recall)
	}
}

// TestIndexedChurn drives FIFO eviction well past capacity and checks the
// cache and its graph stay bounded and queryable — and, with in-edge
// repair plus scheduled maintenance, that the churned graph's self-hit
// rate stays within 2% of a freshly rebuilt one holding the same entries.
func TestIndexedChurn(t *testing.T) {
	const (
		dim      = 8
		capacity = 200
		puts     = 1000
	)
	rng := vec.NewRand(29)
	idx, err := NewIndexed(dim, IndexedOptions{
		Capacity:    capacity,
		Tolerance:   0.3,
		Seed:        11,
		Maintenance: &MaintenanceOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var recent []vec.Vector
	for i := 0; i < puts; i++ {
		k := vec.Scale(vec.RandomGaussian(rng, dim), 2)
		idx.Put(k, []int{i})
		recent = append(recent, k)
		if len(recent) > capacity {
			recent = recent[1:]
		}
	}
	if idx.Len() != capacity {
		t.Fatalf("len=%d, want %d", idx.Len(), capacity)
	}
	s := idx.IndexStats()
	if s.Nodes != capacity {
		t.Fatalf("graph nodes=%d, want %d", s.Nodes, capacity)
	}
	if s.Slots > capacity+1 {
		t.Fatalf("graph slots=%d after churn, want ≤ %d (slot reuse)", s.Slots, capacity+1)
	}
	if s.ReusedSlots == 0 || s.SeveredInEdges == 0 {
		t.Fatalf("churn did not exercise in-edge repair: %+v", s)
	}
	if s.RepairPasses == 0 {
		t.Fatalf("maintenance never triggered over %d reuses: %+v", s.ReusedSlots, s)
	}
	if st := idx.Stats(); st.Evictions != puts-capacity {
		t.Fatalf("evictions=%d, want %d", st.Evictions, puts-capacity)
	}
	hitRate := func(c *IndexedCache) float64 {
		hits := 0
		for _, k := range recent {
			if docs, ok := c.Get(k); ok && len(docs) == 1 {
				hits++
			}
		}
		return float64(hits) / float64(len(recent))
	}
	// A freshly built graph over the identical resident set is the
	// ceiling: churned self-hit rate must be within 2% of it.
	fresh, err := NewIndexed(dim, IndexedOptions{Capacity: capacity, Tolerance: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range recent {
		fresh.Put(k, []int{puts - capacity + i})
	}
	churned, rebuilt := hitRate(idx), hitRate(fresh)
	if rebuilt == 0 {
		t.Fatal("fresh rebuild found no hits; workload is broken")
	}
	if churned < rebuilt-0.02 {
		t.Fatalf("post-churn self-hit rate %.3f vs fresh rebuild %.3f, want within 2%%", churned, rebuilt)
	}
}

func TestIndexedLRU(t *testing.T) {
	idx, err := NewIndexed(2, IndexedOptions{Capacity: 2, Tolerance: 0.1, Policy: LRU, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := vec.Vector{0, 0}, vec.Vector{10, 0}, vec.Vector{0, 10}
	idx.Put(a, []int{1})
	idx.Put(b, []int{2})
	if _, ok := idx.Get(a); !ok { // refresh a
		t.Fatal("expected hit on a")
	}
	idx.Put(c, []int{3}) // evicts b, the LRU entry
	if _, ok := idx.Get(b); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := idx.Get(a); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := idx.Get(c); !ok {
		t.Fatal("c should be cached")
	}
}

func TestIndexedCrossoverPaths(t *testing.T) {
	idx, err := NewIndexed(4, IndexedOptions{Capacity: 100, Tolerance: 0.1, Crossover: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(31)
	for i := 0; i < 5; i++ {
		idx.Put(vec.RandomGaussian(rng, 4), []int{i})
	}
	idx.Get(vec.RandomGaussian(rng, 4))
	if s := idx.IndexStats(); s.BruteScans != 1 || s.Searches != 0 {
		t.Fatalf("below crossover: bruteScans=%d searches=%d", s.BruteScans, s.Searches)
	}
	for i := 5; i < 20; i++ {
		idx.Put(vec.RandomGaussian(rng, 4), []int{i})
	}
	idx.Get(vec.RandomGaussian(rng, 4))
	if s := idx.IndexStats(); s.BruteScans != 1 || s.Searches != 1 {
		t.Fatalf("above crossover: bruteScans=%d searches=%d", s.BruteScans, s.Searches)
	}
	if st := idx.Stats(); st.DistComps == 0 {
		t.Fatal("DistComps not charged")
	}
}

func TestIndexedSetEfSearch(t *testing.T) {
	idx, err := NewIndexed(4, IndexedOptions{Capacity: 100, Tolerance: 0.1, EfSearch: 32, Crossover: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.EfSearch(); got != 32 {
		t.Fatalf("EfSearch() = %d, want 32", got)
	}
	idx.SetEfSearch(0) // ignored
	idx.SetEfSearch(-4)
	if got := idx.EfSearch(); got != 32 {
		t.Fatalf("EfSearch() after bad sets = %d, want 32", got)
	}
	idx.SetEfSearch(128)
	if got := idx.EfSearch(); got != 128 {
		t.Fatalf("EfSearch() = %d, want 128", got)
	}
	// Lookups keep working with the retuned beam.
	rng := vec.NewRand(29)
	k := vec.RandomGaussian(rng, 4)
	idx.Put(k, []int{7})
	if docs, ok := idx.Get(k); !ok || docs[0] != 7 {
		t.Fatalf("get after SetEfSearch = %v %v", docs, ok)
	}
}

func TestIndexedEntriesAndClear(t *testing.T) {
	idx, err := NewIndexed(2, IndexedOptions{Capacity: 5, Tolerance: 0.1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		idx.PutWithTolerance(vec.Vector{float32(i), 0}, []int{i}, float32(i)*0.1)
	}
	entries := idx.Entries()
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for i, e := range entries { // eviction (insert) order
		if e.Docs[0] != i || e.Key[0] != float32(i) || e.Tol != float32(i)*0.1 {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	keys := idx.Keys()
	if len(keys) != 3 || keys[1][0] != 1 {
		t.Fatalf("keys = %v", keys)
	}
	before := idx.Stats()
	idx.Clear()
	if idx.Len() != 0 {
		t.Fatalf("len=%d after clear", idx.Len())
	}
	if after := idx.Stats(); after.Puts != before.Puts {
		t.Fatal("Clear must preserve counters")
	}
	// The cache must keep working after the rebuild.
	idx.Put(vec.Vector{1, 1}, []int{9})
	if docs, ok := idx.Get(vec.Vector{1, 1}); !ok || docs[0] != 9 {
		t.Fatalf("post-clear get = %v %v", docs, ok)
	}
}

func TestIndexedIgnoresBadInput(t *testing.T) {
	idx, err := NewIndexed(3, IndexedOptions{Capacity: 5, Tolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	idx.Put(nil, []int{1})
	idx.Put(vec.Vector{1, 2}, []int{1})                // wrong dim
	idx.PutWithTolerance(vec.Vector{1, 2, 3}, nil, -1) // negative tol
	if idx.Len() != 0 {
		t.Fatalf("bad puts were accepted: len=%d", idx.Len())
	}
	if _, ok := idx.Get(nil); ok {
		t.Fatal("nil query hit")
	}
	if _, ok := idx.Get(vec.Vector{1}); ok {
		t.Fatal("wrong-dim query hit")
	}
	if idx.Capacity() != 5 || idx.Tolerance() != 0.1 || idx.Policy() != FIFO {
		t.Fatal("accessor mismatch")
	}
}

// TestIndexedMaintain covers the manual drain, the scheduling knobs'
// validation, and the graph_repair stage observation.
func TestIndexedMaintain(t *testing.T) {
	for _, bad := range []MaintenanceOptions{
		{Every: -1}, {Budget: -1}, {TombstoneRatio: 1.5}, {TombstoneRatio: -0.1},
	} {
		bad := bad
		if _, err := NewIndexed(4, IndexedOptions{Capacity: 10, Tolerance: 0.1, Maintenance: &bad}); err == nil {
			t.Fatalf("options %+v should fail validation", bad)
		}
	}

	tel := telemetry.New(telemetry.Options{})
	idx, err := NewIndexed(4, IndexedOptions{
		Capacity:    100,
		Tolerance:   0.3,
		Seed:        17,
		Maintenance: &MaintenanceOptions{Every: 1 << 30}, // schedule never fires; Maintain drains
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(18)
	for i := 0; i < 600; i++ {
		idx.Put(vec.Scale(vec.RandomGaussian(rng, 4), 2), []int{i})
	}
	s := idx.IndexStats()
	if s.ReusedSlots == 0 {
		t.Fatal("churn did not reuse slots")
	}
	if s.RepairPasses != 0 {
		t.Fatalf("scheduled pass fired despite Every=1<<30: %+v", s)
	}
	st := idx.Maintain(0) // full drain
	if idx.IndexStats().PendingRepair != 0 {
		t.Fatalf("Maintain(0) left %d pending", idx.IndexStats().PendingRepair)
	}
	after := idx.IndexStats()
	if after.RepairPasses == 0 || int64(st.Relinked) != after.RepairedNodes {
		t.Fatalf("drain counters off: stats=%+v pass=%+v", after, st)
	}
	if after.RepairNanos == 0 {
		t.Fatal("RepairNanos not accumulated")
	}
	snap := tel.StageSnapshot()
	if snap[telemetry.StageGraphRepair].N == 0 {
		t.Fatal("graph_repair stage not observed")
	}
	// Draining an already-clean queue is a no-op.
	if st := idx.Maintain(0); st.Examined != 0 || st.Relinked != 0 {
		t.Fatalf("clean-queue Maintain did work: %+v", st)
	}
}
