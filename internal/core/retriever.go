package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// Searcher abstracts the miss-path nearest-neighbor search. vectordb.DB
// satisfies it, as does the batch pipeline's coalesced entry point.
type Searcher interface {
	Search(q vec.Vector, k int) ([]vec.Scored, error)
}

// ContextCache is an optional extension of Cache for implementations
// that want the request context — the cluster client threads trace
// propagation through it. RetrieveContext detects it by type assertion;
// plain caches are called through Get unchanged.
type ContextCache interface {
	GetContext(ctx context.Context, q vec.Vector) ([]int, bool)
}

// ContextSearcher is the analogous optional extension of Searcher; the
// batch pipeline and cluster client implement it so a sampled trace
// follows the miss path across coalescing, queueing, and node hops.
type ContextSearcher interface {
	SearchContext(ctx context.Context, q vec.Vector, k int) ([]vec.Scored, error)
}

// RetrieverOptions configures a CachedRetriever.
type RetrieverOptions struct {
	// K is the number of document indices the RAG pipeline expects.
	K int
	// Rerank is the over-fetching factor ρ ≥ 1 (§3.3.4): the database
	// is asked for ρ·K neighbors, all are cached, and on a hit the
	// cached candidates are re-ranked against the *current* query so
	// only the most relevant K are returned. ρ = 1 disables
	// re-ranking. The paper uses ρ = 1 on the uniform benchmarks and
	// ρ = 4 on MedRAG-Zipf.
	Rerank int
	// Source resolves document IDs to their stored embeddings for the
	// re-ranking pass. Required when Rerank > 1.
	Source vectordb.VectorSource
	// Latency simulates the production-scale database service time;
	// when nil the database contributes zero simulated latency and
	// only real work is done. See vectordb.LatencyModel.
	Latency vectordb.LatencyModel
	// Searcher, when non-nil, serves the miss-path database search
	// instead of calling db.Search directly. This is the hook the
	// miss-coalescing batch pipeline (internal/batch) plugs into:
	// concurrent misses are deduplicated and gathered into batched
	// index passes without the retriever knowing. The database is still
	// consulted for Dim/Len and (via Source) re-ranking vectors.
	Searcher Searcher
	// DynamicTolerance, when positive, derives each cache line's match
	// threshold from its own retrieval instead of the global τ:
	// tol = DynamicTolerance × distance(query, K-th retrieved
	// neighbor). A line whose neighbors were tightly packed then only
	// serves very close queries. This is the per-line dynamic
	// tolerance of Frieder et al. that §3.3.3 discusses as the
	// alternative to hand-tuning a global τ.
	DynamicTolerance float64
	// Telemetry, when non-nil, receives per-stage latency observations
	// (cache_lookup, cache_fill, db_search) for every retrieval. Stage
	// durations reuse the timings Retrieve already measures, so the
	// instrumented hot path adds no extra clock reads; nil costs one
	// branch per stage.
	Telemetry *telemetry.Telemetry
}

// Result reports one retrieval.
type Result struct {
	// Docs are the K document indices handed to the LLM prompt.
	Docs []int
	// Hit reports whether the cache answered the query.
	Hit bool
	// CacheLookup is the measured wall-clock time of the cache Get —
	// the quantity the paper's Fig. 10/11 report.
	CacheLookup time.Duration
	// CacheTime is the total measured time inside the cache: the
	// lookup plus, on a miss, the fill (Algorithm 1 line 9).
	CacheTime time.Duration
	// DBTime is the simulated database service time (zero on hits or
	// when no latency model is configured).
	DBTime time.Duration
}

// Total returns the end-to-end retrieval latency: real cache time plus
// simulated database time, the quantity Fig. 6c and Fig. 7d report.
func (r Result) Total() time.Duration { return r.CacheTime + r.DBTime }

// CachedRetriever implements the full document-retrieval path of
// Algorithm 1: cache lookup, database fallback, cache fill, and the
// optional re-ranking pass. It is safe for concurrent use when its cache
// and database are.
type CachedRetriever struct {
	cache Cache
	db    vectordb.DB
	opts  RetrieverOptions
	dist  vec.DistanceFunc
}

// NewCachedRetriever wires a Proximity cache in front of a vector
// database. cache may be nil, yielding a no-cache baseline retriever that
// always consults the database — the paper's comparison point.
func NewCachedRetriever(cache Cache, db vectordb.DB, opts RetrieverOptions) (*CachedRetriever, error) {
	if db == nil {
		return nil, errors.New("core: retriever requires a database")
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if opts.Rerank == 0 {
		opts.Rerank = 1
	}
	if opts.Rerank < 1 {
		return nil, fmt.Errorf("core: rerank factor must be ≥ 1, got %d", opts.Rerank)
	}
	if opts.Rerank > 1 && opts.Source == nil {
		return nil, errors.New("core: rerank factor > 1 requires a vector source")
	}
	return &CachedRetriever{
		cache: cache,
		db:    db,
		opts:  opts,
		dist:  vec.L2Distance.Func(),
	}, nil
}

// Retrieve returns the K most relevant document indices for the query
// embedding, consulting the cache first.
func (r *CachedRetriever) Retrieve(q vec.Vector) (Result, error) {
	return r.RetrieveContext(context.Background(), q)
}

// RetrieveContext is Retrieve with request-scoped observability: if ctx
// carries a sampled telemetry.Trace, each stage records a span, and the
// context is forwarded to ContextCache/ContextSearcher implementations
// so traces survive the batch pipeline and cluster hops. With no trace
// in ctx it behaves exactly like Retrieve.
func (r *CachedRetriever) RetrieveContext(ctx context.Context, q vec.Vector) (Result, error) {
	if q == nil {
		return Result{}, errNilQuery
	}
	var res Result
	tel := r.opts.Telemetry
	trace := telemetry.FromContext(ctx)

	if r.cache != nil {
		finish := trace.StartSpan(telemetry.StageCacheLookup)
		start := time.Now()
		var cached []int
		var hit bool
		if cc, ok := r.cache.(ContextCache); ok {
			cached, hit = cc.GetContext(ctx, q)
		} else {
			cached, hit = r.cache.Get(q)
		}
		res.CacheLookup = time.Since(start)
		finish(nil)
		res.CacheTime = res.CacheLookup
		tel.ObserveStage(telemetry.StageCacheLookup, res.CacheLookup)
		if hit {
			res.Hit = true
			docs, err := r.rerank(q, cached)
			if err != nil {
				return Result{}, err
			}
			res.Docs = docs
			return res, nil
		}
	}

	// Cache miss (or no cache): over-fetch ρ·K from the database,
	// through the batching/coalescing searcher when one is configured.
	// A context-aware searcher attributes its own stages (coalesce wait,
	// queue dwell, node RPC); a plain one is timed here as db_search.
	search := Searcher(r.db)
	if r.opts.Searcher != nil {
		search = r.opts.Searcher
	}
	var scored []vec.Scored
	var err error
	if cs, ok := search.(ContextSearcher); ok {
		scored, err = cs.SearchContext(ctx, q, r.opts.K*r.opts.Rerank)
	} else {
		finish := trace.StartSpan(telemetry.StageDBSearch)
		start := time.Now()
		scored, err = search.Search(q, r.opts.K*r.opts.Rerank)
		dur := time.Since(start)
		finish(err)
		tel.ObserveStage(telemetry.StageDBSearch, dur)
	}
	if err != nil {
		return Result{}, fmt.Errorf("core: database search: %w", err)
	}
	if r.opts.Latency != nil {
		res.DBTime = r.opts.Latency.Lookup()
	}
	all := vec.IDs(scored)

	if r.cache != nil {
		finish := trace.StartSpan(telemetry.StageCacheFill)
		start := time.Now()
		if r.opts.DynamicTolerance > 0 {
			r.cache.PutWithTolerance(q, all, r.dynamicTolerance(scored))
		} else {
			r.cache.Put(q, all)
		}
		fill := time.Since(start)
		finish(nil)
		res.CacheTime += fill
		tel.ObserveStage(telemetry.StageCacheFill, fill)
	}
	if len(all) > r.opts.K {
		all = all[:r.opts.K]
	}
	res.Docs = all
	return res, nil
}

// dynamicTolerance derives a per-line match threshold from the retrieved
// neighborhood: the distance to the K-th neighbor scaled by the
// configured factor. With fewer than K results the farthest one is used.
func (r *CachedRetriever) dynamicTolerance(scored []vec.Scored) float32 {
	if len(scored) == 0 {
		return 0
	}
	idx := r.opts.K - 1
	if idx >= len(scored) {
		idx = len(scored) - 1
	}
	return float32(r.opts.DynamicTolerance) * scored[idx].Dist
}

// rerank scores the cached candidate IDs against the current query and
// keeps the best K. With ρ = 1 it just truncates, preserving the order
// the database returned for the original cached query.
func (r *CachedRetriever) rerank(q vec.Vector, cached []int) ([]int, error) {
	if r.opts.Rerank == 1 || len(cached) <= r.opts.K {
		if len(cached) > r.opts.K {
			cached = cached[:r.opts.K]
		}
		return cached, nil
	}
	scored := make([]vec.Scored, 0, len(cached))
	for _, id := range cached {
		v, err := r.opts.Source.Vector(id)
		if err != nil {
			return nil, fmt.Errorf("core: rerank: %w", err)
		}
		scored = append(scored, vec.Scored{ID: id, Dist: r.dist(q, v)})
	}
	return vec.IDs(vec.TopK(scored, r.opts.K)), nil
}

// Cache returns the underlying cache (nil for the no-cache baseline).
func (r *CachedRetriever) Cache() Cache { return r.cache }

// DB returns the backing database.
func (r *CachedRetriever) DB() vectordb.DB { return r.db }

// Searcher returns the configured miss-path searcher (nil when misses go
// straight to the database). The stats endpoint uses this to surface
// batch-pipeline counters.
func (r *CachedRetriever) Searcher() Searcher { return r.opts.Searcher }

// Telemetry returns the configured telemetry hub (nil when unset). The
// server uses this to expose the retriever's stage histograms and tracer.
func (r *CachedRetriever) Telemetry() *telemetry.Telemetry { return r.opts.Telemetry }

// K returns the configured result count.
func (r *CachedRetriever) K() int { return r.opts.K }

// Rerank returns the configured over-fetch factor ρ.
func (r *CachedRetriever) Rerank() int { return r.opts.Rerank }
