package core

import (
	"bytes"
	"strings"
	"testing"

	"proximity/internal/vec"
)

func TestFlatSnapshotRoundTrip(t *testing.T) {
	orig := mustFlat(t, 2, Options{Capacity: 4, Tolerance: 1.5, Policy: LRU})
	orig.Put(vec.Vector{0, 0}, []int{1, 2})
	orig.Put(vec.Vector{10, 0}, []int{3})
	orig.PutWithTolerance(vec.Vector{20, 0}, []int{4}, 0.25)

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored Len = %d", restored.Len())
	}
	if restored.Capacity() != 4 || restored.Tolerance() != 1.5 || restored.Policy() != LRU {
		t.Error("options not preserved")
	}
	// Content behaves identically.
	if docs, ok := restored.Get(vec.Vector{0.5, 0}); !ok || docs[0] != 1 {
		t.Errorf("restored Get = %v %v", docs, ok)
	}
	// Per-line tolerances survive: the 0.25-line rejects a 0.5 query.
	if _, ok := restored.Get(vec.Vector{20.5, 0}); ok {
		t.Error("per-line tolerance lost on reload")
	}
	if docs, ok := restored.Get(vec.Vector{20.1, 0}); !ok || docs[0] != 4 {
		t.Errorf("tight line should still serve close queries: %v %v", docs, ok)
	}
	// Counters restart.
	if s := restored.Stats(); s.Puts != 0 {
		t.Errorf("restored counters = %+v, want clean", s)
	}
}

func TestFlatSnapshotPreservesEvictionOrder(t *testing.T) {
	orig := mustFlat(t, 1, Options{Capacity: 3, Tolerance: 0.1, Policy: FIFO})
	orig.Put(vec.Vector{0}, []int{0})
	orig.Put(vec.Vector{10}, []int{1})
	orig.Put(vec.Vector{20}, []int{2})

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Next insert must evict {0}, the original front.
	restored.Put(vec.Vector{30}, []int{3})
	if _, ok := restored.Get(vec.Vector{0}); ok {
		t.Error("eviction order lost: oldest entry survived")
	}
	if _, ok := restored.Get(vec.Vector{10}); !ok {
		t.Error("second-oldest entry should survive")
	}
}

func TestLSHSnapshotRoundTrip(t *testing.T) {
	orig := mustLSH(t, 16, LSHOptions{
		Bits: 6, BucketCapacity: 4, Tolerance: 1, Policy: LRU, Seed: 77, Probes: 3,
	})
	rng := vec.NewRand(5)
	keys := make([]vec.Vector, 30)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomUnit(rng, 16), 10)
		orig.Put(keys[i], []int{i})
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLSHSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), orig.Len())
	}
	if restored.Bits() != 6 || restored.BucketCapacity() != 4 || restored.Probes() != 3 {
		t.Error("options not preserved")
	}
	// Same seed → same buckets → identical behavior on every key.
	if restored.BucketsUsed() != orig.BucketsUsed() {
		t.Errorf("bucket layout changed: %d vs %d", restored.BucketsUsed(), orig.BucketsUsed())
	}
	for i, k := range keys {
		od, oOK := orig.Get(k)
		rd, rOK := restored.Get(k)
		if oOK != rOK {
			t.Fatalf("key %d: hit divergence (orig %v, restored %v)", i, oOK, rOK)
		}
		if oOK && od[0] != rd[0] {
			t.Fatalf("key %d: docs diverge (%v vs %v)", i, od, rd)
		}
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	if _, err := ReadFlatSnapshot(strings.NewReader("not gob")); err == nil {
		t.Error("garbage flat snapshot should error")
	}
	if _, err := ReadLSHSnapshot(strings.NewReader("not gob")); err == nil {
		t.Error("garbage lsh snapshot should error")
	}
	// A flat snapshot is not an LSH snapshot: it decodes (gob matches
	// by field name) but rebuilding fails on the zero Bits field.
	flat := mustFlat(t, 2, Options{Capacity: 2, Tolerance: 1})
	flat.Put(vec.Vector{1, 1}, []int{1})
	var buf bytes.Buffer
	if err := flat.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLSHSnapshot(&buf); err == nil {
		t.Error("flat snapshot should not load as an LSH cache")
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	orig := mustFlat(t, 3, Options{Capacity: 2, Tolerance: 1})
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Errorf("empty snapshot restored %d entries", restored.Len())
	}
	// Still usable.
	restored.Put(vec.Vector{1, 2, 3}, []int{9})
	if _, ok := restored.Get(vec.Vector{1, 2, 3}); !ok {
		t.Error("restored empty cache unusable")
	}
}
