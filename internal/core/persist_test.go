package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"proximity/internal/vec"
)

func TestFlatSnapshotRoundTrip(t *testing.T) {
	orig := mustFlat(t, 2, Options{Capacity: 4, Tolerance: 1.5, Policy: LRU})
	orig.Put(vec.Vector{0, 0}, []int{1, 2})
	orig.Put(vec.Vector{10, 0}, []int{3})
	orig.PutWithTolerance(vec.Vector{20, 0}, []int{4}, 0.25)

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored Len = %d", restored.Len())
	}
	if restored.Capacity() != 4 || restored.Tolerance() != 1.5 || restored.Policy() != LRU {
		t.Error("options not preserved")
	}
	// Content behaves identically.
	if docs, ok := restored.Get(vec.Vector{0.5, 0}); !ok || docs[0] != 1 {
		t.Errorf("restored Get = %v %v", docs, ok)
	}
	// Per-line tolerances survive: the 0.25-line rejects a 0.5 query.
	if _, ok := restored.Get(vec.Vector{20.5, 0}); ok {
		t.Error("per-line tolerance lost on reload")
	}
	if docs, ok := restored.Get(vec.Vector{20.1, 0}); !ok || docs[0] != 4 {
		t.Errorf("tight line should still serve close queries: %v %v", docs, ok)
	}
	// Counters restart.
	if s := restored.Stats(); s.Puts != 0 {
		t.Errorf("restored counters = %+v, want clean", s)
	}
}

func TestFlatSnapshotPreservesEvictionOrder(t *testing.T) {
	orig := mustFlat(t, 1, Options{Capacity: 3, Tolerance: 0.1, Policy: FIFO})
	orig.Put(vec.Vector{0}, []int{0})
	orig.Put(vec.Vector{10}, []int{1})
	orig.Put(vec.Vector{20}, []int{2})

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Next insert must evict {0}, the original front.
	restored.Put(vec.Vector{30}, []int{3})
	if _, ok := restored.Get(vec.Vector{0}); ok {
		t.Error("eviction order lost: oldest entry survived")
	}
	if _, ok := restored.Get(vec.Vector{10}); !ok {
		t.Error("second-oldest entry should survive")
	}
}

func TestLSHSnapshotRoundTrip(t *testing.T) {
	orig := mustLSH(t, 16, LSHOptions{
		Bits: 6, BucketCapacity: 4, Tolerance: 1, Policy: LRU, Seed: 77, Probes: 3,
	})
	rng := vec.NewRand(5)
	keys := make([]vec.Vector, 30)
	for i := range keys {
		keys[i] = vec.Scale(vec.RandomUnit(rng, 16), 10)
		orig.Put(keys[i], []int{i})
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLSHSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), orig.Len())
	}
	if restored.Bits() != 6 || restored.BucketCapacity() != 4 || restored.Probes() != 3 {
		t.Error("options not preserved")
	}
	// Same seed → same buckets → identical behavior on every key.
	if restored.BucketsUsed() != orig.BucketsUsed() {
		t.Errorf("bucket layout changed: %d vs %d", restored.BucketsUsed(), orig.BucketsUsed())
	}
	for i, k := range keys {
		od, oOK := orig.Get(k)
		rd, rOK := restored.Get(k)
		if oOK != rOK {
			t.Fatalf("key %d: hit divergence (orig %v, restored %v)", i, oOK, rOK)
		}
		if oOK && od[0] != rd[0] {
			t.Fatalf("key %d: docs diverge (%v vs %v)", i, od, rd)
		}
	}
}

func TestSnapshotDecodeErrors(t *testing.T) {
	if _, err := ReadFlatSnapshot(strings.NewReader("not gob")); err == nil {
		t.Error("garbage flat snapshot should error")
	}
	if _, err := ReadLSHSnapshot(strings.NewReader("not gob")); err == nil {
		t.Error("garbage lsh snapshot should error")
	}
	// A flat snapshot is not an LSH snapshot: it decodes (gob matches
	// by field name) but rebuilding fails on the zero Bits field.
	flat := mustFlat(t, 2, Options{Capacity: 2, Tolerance: 1})
	flat.Put(vec.Vector{1, 1}, []int{1})
	var buf bytes.Buffer
	if err := flat.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLSHSnapshot(&buf); err == nil {
		t.Error("flat snapshot should not load as an LSH cache")
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	orig := mustFlat(t, 3, Options{Capacity: 2, Tolerance: 1})
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFlatSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Errorf("empty snapshot restored %d entries", restored.Len())
	}
	// Still usable.
	restored.Put(vec.Vector{1, 2, 3}, []int{9})
	if _, ok := restored.Get(vec.Vector{1, 2, 3}); !ok {
		t.Error("restored empty cache unusable")
	}
}

// Legacy headerless (v0) snapshots — written before the magic/version
// header existed — must still load.
func TestSnapshotLegacyHeaderlessRead(t *testing.T) {
	orig := mustFlat(t, 2, Options{Capacity: 4, Tolerance: 1})
	orig.Put(vec.Vector{1, 2}, []int{7})
	var headered bytes.Buffer
	if err := orig.WriteSnapshot(&headered); err != nil {
		t.Fatal(err)
	}
	// Strip the header to reconstruct what a v0 writer produced.
	legacy := bytes.NewReader(headered.Bytes()[len(snapshotMagic)+1:])
	restored, err := ReadFlatSnapshot(legacy)
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if docs, ok := restored.Get(vec.Vector{1, 2}); !ok || docs[0] != 7 {
		t.Fatalf("legacy restore Get = %v %v", docs, ok)
	}
}

// Snapshots from a newer format generation are rejected with the typed
// error, not fed to gob.
func TestSnapshotFutureFormatVersion(t *testing.T) {
	future := append(append([]byte(nil), snapshotMagic...), 0xFF, 1, 2, 3)
	if _, err := ReadFlatSnapshot(bytes.NewReader(future)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("flat err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := ReadLSHSnapshot(bytes.NewReader(future)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("lsh err = %v, want ErrSnapshotVersion", err)
	}
	if _, _, err := ReadEntrySnapshot(bytes.NewReader(future)); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("entry err = %v, want ErrSnapshotVersion", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failed write leaves the previous file untouched and no temp files.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("file = %q, %v; want untouched", got, err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("dir has %d files, want 1 (no temp leftovers)", len(files))
	}
}

// Round-trip property (entry snapshot): enumerating any cache variant,
// serializing, and replaying into a fresh cache of the same variant
// preserves entries, per-line tolerances, and eviction order.
func TestEntrySnapshotRoundTripVariants(t *testing.T) {
	const (
		dim = 6
		cap = 24
		tol = 1.2
	)
	fill := func(c Cache, rng interface{ Float64() float64 }, keys []vec.Vector) {
		for i, k := range keys {
			c.PutWithTolerance(k, []int{i, i * 3}, tol*float32(0.5+rng.Float64()))
		}
	}
	genKeys := func(seed uint64, n int) []vec.Vector {
		rng := vec.NewRand(seed)
		out := make([]vec.Vector, n)
		for i := range out {
			out[i] = vec.Scale(vec.RandomGaussian(rng, dim), 2)
		}
		return out
	}
	sameEntries := func(t *testing.T, a, b []Entry, ordered bool) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("entry count %d vs %d", len(a), len(b))
		}
		key := func(e Entry) string {
			return fmt.Sprintf("%v|%v|%v", e.Key, e.Docs, e.Tol)
		}
		if ordered {
			for i := range a {
				if key(a[i]) != key(b[i]) {
					t.Fatalf("entry %d diverged:\n%s\nvs\n%s", i, key(a[i]), key(b[i]))
				}
			}
			return
		}
		as, bs := make([]string, len(a)), make([]string, len(b))
		for i := range a {
			as[i], bs[i] = key(a[i]), key(b[i])
		}
		sort.Strings(as)
		sort.Strings(bs)
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("entry sets diverge at %d:\n%s\nvs\n%s", i, as[i], bs[i])
			}
		}
	}
	cases := []struct {
		name    string
		make    func() Cache
		ordered bool // variant enumerates in a deterministic eviction order
	}{
		{"flat", func() Cache {
			return mustFlat(t, dim, Options{Capacity: cap, Tolerance: tol, Policy: LRU})
		}, true},
		{"lsh", func() Cache {
			return mustLSH(t, dim, LSHOptions{Bits: 3, BucketCapacity: 4, Tolerance: tol, Seed: 5})
		}, false},
		{"indexed", func() Cache {
			c, err := NewIndexed(dim, IndexedOptions{Capacity: cap, Tolerance: tol, Policy: LRU, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := vec.NewRand(77)
			keys := genKeys(101, 40) // overfill to exercise eviction order
			orig := tc.make()
			fill(orig, rng, keys)
			src, ok := orig.(EntrySource)
			if !ok {
				t.Fatalf("%T does not enumerate entries", orig)
			}
			var buf bytes.Buffer
			if err := WriteEntrySnapshot(&buf, dim, src); err != nil {
				t.Fatal(err)
			}
			gotDim, entries, err := ReadEntrySnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if gotDim != dim {
				t.Fatalf("dim = %d", gotDim)
			}
			fresh := tc.make()
			for _, e := range entries {
				fresh.PutWithTolerance(e.Key, e.Docs, e.Tol)
			}
			sameEntries(t, src.Entries(), fresh.(EntrySource).Entries(), tc.ordered)
			if orig.Len() != fresh.Len() {
				t.Fatalf("Len %d vs %d", orig.Len(), fresh.Len())
			}
		})
	}
}
