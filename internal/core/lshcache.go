package core

import (
	"fmt"
	"sync"

	"proximity/internal/lsh"
	"proximity/internal/vec"
)

// LSHCache is Proximity-LSH (§3.2): an incoming query is hashed with L
// random hyperplanes, and only the single bucket selected by the L-bit
// signature is scanned. Each bucket is a fixed-capacity FlatCache of b
// entries with its own local eviction, making the whole structure a
// b-way set-associative cache whose lookup cost O((L+b)·d) is independent
// of the total capacity 2^L·b.
//
// Buckets are allocated lazily: with skewed workloads most signatures
// never occur, so actual memory tracks usage rather than the theoretical
// maximum (§3.3.1, Fig. 9).
type LSHCache struct {
	hasher *lsh.Hasher
	bucket Options // per-bucket options; Capacity = b
	probes int     // buckets examined per lookup (≥ 1)
	seed   uint64  // hyperplane seed, preserved for snapshots

	mu            sync.RWMutex
	buckets       map[uint32]*FlatCache
	hashOps       int64
	missesOnEmpty int64 // lookups that found no match in any probed bucket
}

var _ Cache = (*LSHCache)(nil)

// LSHOptions configures an LSHCache.
type LSHOptions struct {
	// Bits is the number of random hyperplanes L (buckets = 2^L). The
	// paper evaluates L ∈ {4, 6, 8, 10} and uses 8 by default.
	Bits int
	// BucketCapacity is the per-bucket entry limit b. The paper finds
	// b = 20 the best balance of hit rate and scan cost (§4.3.5).
	BucketCapacity int
	// Tolerance is the similarity threshold τ applied within the
	// selected bucket.
	Tolerance float32
	// Metric is the distance function (must match the database).
	Metric vec.Metric
	// Policy is the per-bucket eviction strategy.
	Policy Policy
	// Seed drives the hyperplane draw.
	Seed uint64
	// Probes enables multi-probe lookups: in addition to the query's
	// own bucket, up to Probes-1 buckets at Hamming distance 1 are
	// scanned, recovering hits lost when a rephrasing straddles a
	// hyperplane. 0 or 1 means single-probe (the paper's design);
	// multi-probe is the natural extension §3.2 hints at, trading
	// extra scans (still O(Probes·b·d), capacity-independent) for hit
	// rate. Capped at Bits+1 (the base bucket plus one flip per bit).
	Probes int
	// OnEvict observes per-bucket capacity evictions (see
	// Options.OnEvict); bucket-local displacement under skew fires it
	// even while the cache as a whole is far from its theoretical
	// capacity. Runs under the bucket's lock.
	OnEvict func(Entry)
}

// DefaultBucketCapacity is the paper's recommended per-bucket size.
const DefaultBucketCapacity = 20

// NewLSH creates a Proximity-LSH cache for dim-dimensional embeddings.
func NewLSH(dim int, opts LSHOptions) (*LSHCache, error) {
	if opts.BucketCapacity == 0 {
		opts.BucketCapacity = DefaultBucketCapacity
	}
	hasher, err := lsh.NewHasher(dim, opts.Bits, opts.Seed)
	if err != nil {
		return nil, err
	}
	bucket := Options{
		Capacity:  opts.BucketCapacity,
		Tolerance: opts.Tolerance,
		Metric:    opts.Metric,
		Policy:    opts.Policy,
		OnEvict:   opts.OnEvict,
	}
	bucket.fillDefaults()
	if err := bucket.validate(); err != nil {
		return nil, err
	}
	if opts.Probes < 0 {
		return nil, fmt.Errorf("core: probes must be non-negative, got %d", opts.Probes)
	}
	probes := opts.Probes
	if probes == 0 {
		probes = 1
	}
	if max := opts.Bits + 1; probes > max {
		probes = max
	}
	return &LSHCache{
		hasher:  hasher,
		bucket:  bucket,
		probes:  probes,
		seed:    opts.Seed,
		buckets: make(map[uint32]*FlatCache),
	}, nil
}

// Get hashes the query (cost O(L·d)) and scans only its bucket (cost
// O(b·d)); with multi-probe enabled, up to Probes buckets in increasing
// Hamming distance are scanned and the globally closest match wins. An
// unallocated bucket costs nothing — the false-positive containment
// property §3.2 highlights.
func (c *LSHCache) Get(q vec.Vector) ([]int, bool) {
	if q == nil {
		return nil, false
	}
	if c.probes == 1 {
		sig := c.hasher.Hash(q)
		c.mu.Lock()
		c.hashOps += int64(c.hasher.Bits())
		b := c.buckets[sig]
		c.mu.Unlock()
		if b == nil {
			// Count the miss so hit-rate accounting stays exact
			// even though no bucket was scanned.
			c.mu.Lock()
			c.missesOnEmpty++
			c.mu.Unlock()
			return nil, false
		}
		return b.Get(q)
	}
	return c.getMultiProbe(q)
}

// getMultiProbe scans the probe sequence, then performs the recorded Get
// on the bucket holding the overall closest key.
func (c *LSHCache) getMultiProbe(q vec.Vector) ([]int, bool) {
	probeSigs := c.hasher.ProbeSequence(q)[:c.probes]
	c.mu.Lock()
	c.hashOps += int64(c.hasher.Bits())
	candidates := make([]*FlatCache, 0, len(probeSigs))
	for _, sig := range probeSigs {
		if b := c.buckets[sig]; b != nil {
			candidates = append(candidates, b)
		}
	}
	c.mu.Unlock()

	var (
		best     *FlatCache
		bestDist float32
	)
	for _, b := range candidates {
		if d, ok := b.PeekAdmissible(q); ok && (best == nil || d < bestDist) {
			best, bestDist = b, d
		}
	}
	if best == nil {
		c.mu.Lock()
		c.missesOnEmpty++
		c.mu.Unlock()
		return nil, false
	}
	// Re-run as a counted Get on the winning bucket (touches LRU). A
	// concurrent eviction may turn this into a miss, which is then
	// counted by the bucket itself.
	return best.Get(q)
}

// TierGet is the two-phase hot-tier lookup (see TierCache): the probe
// sequence is ranked exactly like Get's, but the winning bucket's hit
// bookkeeping (hit counter, LRU refresh) is deferred to Commit. Lookups
// that find no admissible entry return false without counting a miss.
func (c *LSHCache) TierGet(q vec.Vector) (TierHit, bool) {
	if q == nil {
		return TierHit{}, false
	}
	probeSigs := c.hasher.ProbeSequence(q)[:c.probes]
	c.mu.Lock()
	c.hashOps += int64(c.hasher.Bits())
	candidates := make([]*FlatCache, 0, len(probeSigs))
	for _, sig := range probeSigs {
		if b := c.buckets[sig]; b != nil {
			candidates = append(candidates, b)
		}
	}
	c.mu.Unlock()
	var (
		best     *FlatCache
		bestDist float32
	)
	for _, b := range candidates {
		if d, ok := b.PeekAdmissible(q); ok && (best == nil || d < bestDist) {
			best, bestDist = b, d
		}
	}
	if best == nil {
		return TierHit{}, false
	}
	return best.TierGet(q)
}

// Put hashes the query and inserts into its bucket under the cache-wide
// tolerance, allocating the bucket on first use.
func (c *LSHCache) Put(q vec.Vector, docs []int) {
	c.PutWithTolerance(q, docs, c.bucket.Tolerance)
}

// PutWithTolerance inserts an entry with its own match threshold (see
// FlatCache.PutWithTolerance).
func (c *LSHCache) PutWithTolerance(q vec.Vector, docs []int, tol float32) {
	if q == nil {
		return
	}
	sig := c.hasher.Hash(q)
	c.mu.Lock()
	c.hashOps += int64(c.hasher.Bits())
	b := c.buckets[sig]
	if b == nil {
		nb, err := NewFlat(c.hasher.Dim(), c.bucket)
		if err != nil {
			// The bucket options were validated at construction;
			// failure here is unreachable.
			c.mu.Unlock()
			panic(fmt.Sprintf("core: bucket construction failed: %v", err))
		}
		b = nb
		c.buckets[sig] = b
	}
	c.mu.Unlock()
	b.PutWithTolerance(q, docs, tol)
}

// Len returns the total number of entries across allocated buckets.
func (c *LSHCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, b := range c.buckets {
		total += b.Len()
	}
	return total
}

// Capacity returns the theoretical maximum 2^L·b (§3.3.1).
func (c *LSHCache) Capacity() int {
	return c.hasher.NumBuckets() * c.bucket.Capacity
}

// BucketsUsed returns the number of lazily-allocated buckets.
func (c *LSHCache) BucketsUsed() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.buckets)
}

// BucketCapacity returns the per-bucket entry limit b.
func (c *LSHCache) BucketCapacity() int { return c.bucket.Capacity }

// Bits returns the signature width L.
func (c *LSHCache) Bits() int { return c.hasher.Bits() }

// Probes returns the number of buckets examined per lookup.
func (c *LSHCache) Probes() int { return c.probes }

// Tolerance returns the similarity threshold τ.
func (c *LSHCache) Tolerance() float32 { return c.bucket.Tolerance }

// Policy returns the per-bucket eviction policy.
func (c *LSHCache) Policy() Policy { return c.bucket.Policy }

// RelativeOccupancy returns Len()/Capacity(), the Fig. 9(a) metric.
func (c *LSHCache) RelativeOccupancy() float64 {
	return float64(c.Len()) / float64(c.Capacity())
}

// Stats aggregates counters across buckets, adding misses on unallocated
// buckets and hyperplane hash operations.
func (c *LSHCache) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var agg Stats
	for _, b := range c.buckets {
		s := b.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Puts += s.Puts
		agg.Evictions += s.Evictions
		agg.DistComps += s.DistComps
	}
	agg.Misses += c.missesOnEmpty
	agg.HashOps = c.hashOps
	return agg
}

// Entries returns copies of the cached lines: within each bucket in
// eviction order, with bucket order immaterial (signatures re-derive from
// the keys). Implements EntrySource.
func (c *LSHCache) Entries() []Entry {
	c.mu.RLock()
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.RUnlock()
	var out []Entry
	for _, b := range buckets {
		out = append(out, b.Entries()...)
	}
	return out
}

// Keys returns copies of the cached key embeddings (bucket order
// immaterial). Cheaper than Entries when only the keys matter, e.g. the
// shard migrator's seed previews.
func (c *LSHCache) Keys() []vec.Vector {
	c.mu.RLock()
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.RUnlock()
	var out []vec.Vector
	for _, b := range buckets {
		out = append(out, b.Keys()...)
	}
	return out
}

// Clear drops all buckets (counters for per-bucket stats are dropped with
// them; the empty-bucket miss counter is preserved).
func (c *LSHCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buckets = make(map[uint32]*FlatCache)
}
