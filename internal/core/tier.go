package core

import (
	"container/list"

	"proximity/internal/vec"
)

// Tiering contracts: internal/tier composes a small hot cache (any
// variant in this package) over a larger file-backed warm tier. The hot
// tier cannot answer a lookup on its own — a warm entry may be strictly
// closer — so the tiered Get needs the hot tier's best admissible
// candidate WITHOUT the side effects of a normal Get (hit counting, LRU
// refresh): if the warm tier wins, the hot candidate was not hit and
// must not be refreshed. TierGet returns that candidate plus a deferred
// Commit that applies the side effects only once the tiered cache
// decides the hot tier actually won.

// TierHit is the uncommitted result of a TierGet: the candidate's
// documents (already copied) and its exact distance to the query.
// Commit applies the hit's side effects (hit counter, LRU recency
// refresh) on the cache that produced it; a TierHit that loses to a
// warm entry is simply dropped. Commit must be called before any other
// mutation of the producing cache.
//
// The producing cache and the winning entry's list element ride along
// as plain fields rather than a captured closure: TierGet sits on the
// tiered lookup's hot path, and a closure capturing the cache and
// element would cost one heap allocation per hot hit.
type TierHit struct {
	Docs []int
	Dist float32

	src  tierCommitter
	elem *list.Element
}

// tierCommitter is the cache-side half of the two-phase lookup: apply
// the deferred hit bookkeeping (hit counter, LRU refresh) for the entry
// at elem. Implemented by the cache variants that serve as hot tiers.
type tierCommitter interface {
	commitTierHit(elem *list.Element)
}

// Commit applies the deferred hit bookkeeping. Safe on the zero value.
func (h TierHit) Commit() {
	if h.src != nil {
		h.src.commitTierHit(h.elem)
	}
}

// TierCache is the contract a cache variant must satisfy to serve as
// the hot tier of a tier.TieredCache: the plain Cache surface, entry
// enumeration (demotion-order handoff and snapshots), and the two-phase
// lookup. FlatCache, LSHCache, and IndexedCache all qualify.
type TierCache interface {
	Cache
	EntrySource
	// TierGet returns the closest admissible entry without counting a
	// hit/miss or refreshing recency (distance computations are still
	// charged). The returned documents are a copy.
	TierGet(q vec.Vector) (TierHit, bool)
}

// TierStats describes a tiered cache's per-tier occupancy and traffic.
// Entries/Capacity/Bytes fields are gauges of the live structure; the
// rest are cumulative counters.
type TierStats struct {
	// HotEntries/HotCapacity describe the in-memory hot tier.
	HotEntries  int `json:"hotEntries"`
	HotCapacity int `json:"hotCapacity"`
	// WarmEntries/WarmCapacity describe the file-backed warm tier;
	// WarmBytes is the vector bytes resident in the warm record file.
	WarmEntries  int   `json:"warmEntries"`
	WarmCapacity int   `json:"warmCapacity"`
	WarmBytes    int64 `json:"warmBytes"`

	// HotHits/WarmHits split the cache's hits by serving tier.
	HotHits  int64 `json:"hotHits"`
	WarmHits int64 `json:"warmHits"`
	// Promotions counts warm entries moved back into the hot tier on a
	// warm hit (LRU only — FIFO serves warm hits in place to preserve
	// the combined eviction order).
	Promotions int64 `json:"promotions"`
	// Demotions counts hot-tier evictions absorbed into the warm tier
	// instead of being discarded.
	Demotions int64 `json:"demotions"`
	// WarmDiscards counts entries that aged out of the warm tier — the
	// tiered cache's true evictions.
	WarmDiscards int64 `json:"warmDiscards"`

	// WarmLookups counts lookups that consulted a non-empty warm tier;
	// WarmScanned counts warm entries whose vectors were read and
	// exactly compared; WarmPruned counts entries skipped by the pivot
	// lower bounds without touching the record file.
	WarmLookups int64 `json:"warmLookups"`
	WarmScanned int64 `json:"warmScanned"`
	WarmPruned  int64 `json:"warmPruned"`
}

// Merge accumulates other's counters into s and sums the gauges (used
// by sharded aggregation, where per-shard tiers partition the totals).
func (s *TierStats) Merge(other TierStats) {
	s.HotEntries += other.HotEntries
	s.HotCapacity += other.HotCapacity
	s.WarmEntries += other.WarmEntries
	s.WarmCapacity += other.WarmCapacity
	s.WarmBytes += other.WarmBytes
	s.HotHits += other.HotHits
	s.WarmHits += other.WarmHits
	s.Promotions += other.Promotions
	s.Demotions += other.Demotions
	s.WarmDiscards += other.WarmDiscards
	s.WarmLookups += other.WarmLookups
	s.WarmScanned += other.WarmScanned
	s.WarmPruned += other.WarmPruned
}

// TierStatser is implemented by tiered caches (tier.TieredCache,
// possibly sharded); the server surfaces these in /v1/stats and
// /metrics.
type TierStatser interface {
	TierStats() TierStats
}
