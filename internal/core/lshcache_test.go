package core

import (
	"sync"
	"testing"
	"testing/quick"

	"proximity/internal/vec"
)

func mustLSH(t *testing.T, dim int, opts LSHOptions) *LSHCache {
	t.Helper()
	c, err := NewLSH(dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewLSHValidation(t *testing.T) {
	tests := []struct {
		name string
		dim  int
		opts LSHOptions
	}{
		{name: "zero bits", dim: 4, opts: LSHOptions{Bits: 0}},
		{name: "too many bits", dim: 4, opts: LSHOptions{Bits: 40}},
		{name: "zero dim", dim: 0, opts: LSHOptions{Bits: 4}},
		{name: "negative bucket capacity", dim: 4, opts: LSHOptions{Bits: 4, BucketCapacity: -1}},
		{name: "negative tolerance", dim: 4, opts: LSHOptions{Bits: 4, Tolerance: -1}},
		{name: "bad policy", dim: 4, opts: LSHOptions{Bits: 4, Policy: Policy(9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewLSH(tt.dim, tt.opts); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestLSHDefaults(t *testing.T) {
	c := mustLSH(t, 8, LSHOptions{Bits: 6, Tolerance: 1})
	if c.BucketCapacity() != DefaultBucketCapacity {
		t.Errorf("default bucket capacity = %d, want %d", c.BucketCapacity(), DefaultBucketCapacity)
	}
	if c.Bits() != 6 {
		t.Errorf("Bits = %d", c.Bits())
	}
	if c.Capacity() != (1<<6)*DefaultBucketCapacity {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	if c.Policy() != FIFO || c.Tolerance() != 1 {
		t.Error("defaults wrong")
	}
}

func TestLSHBasicHitMiss(t *testing.T) {
	c := mustLSH(t, 16, LSHOptions{Bits: 4, Tolerance: 1, Seed: 1})
	rng := vec.NewRand(2)
	base := vec.Scale(vec.RandomUnit(rng, 16), 10)
	c.Put(base, []int{42})
	near := vec.GaussianAround(rng, base, 0.01)
	docs, ok := c.Get(near)
	if !ok || docs[0] != 42 {
		t.Errorf("near query should hit: %v %v", docs, ok)
	}
	far := vec.Scale(vec.RandomUnit(rng, 16), 10)
	if _, ok := c.Get(far); ok {
		t.Error("far query should miss")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HashOps != 3*4 { // three operations, 4 hyperplanes each
		t.Errorf("HashOps = %d, want 12", s.HashOps)
	}
}

func TestLSHEmptyBucketIsMiss(t *testing.T) {
	// A miss on an unallocated bucket must still be counted (§3.2: empty
	// buckets mean false positives cannot occur).
	c := mustLSH(t, 8, LSHOptions{Bits: 8, Tolerance: 100, Seed: 3})
	if _, ok := c.Get(vec.RandomGaussian(vec.NewRand(1), 8)); ok {
		t.Error("lookup into empty cache should miss")
	}
	if got := c.Stats().Misses; got != 1 {
		t.Errorf("Misses = %d, want 1", got)
	}
	if c.BucketsUsed() != 0 {
		t.Error("Get must not allocate buckets")
	}
}

func TestLSHLazyBucketAllocation(t *testing.T) {
	c := mustLSH(t, 16, LSHOptions{Bits: 10, Tolerance: 1, Seed: 4})
	rng := vec.NewRand(5)
	// Insert 50 queries clustered around one direction: they should
	// collapse into very few buckets.
	base := vec.Scale(vec.RandomUnit(rng, 16), 10)
	for i := 0; i < 50; i++ {
		c.Put(vec.GaussianAround(rng, base, 0.05), []int{i})
	}
	if used := c.BucketsUsed(); used > 8 {
		t.Errorf("clustered inserts used %d buckets, expected few", used)
	}
	if c.Len() == 0 || c.Len() > 50 {
		t.Errorf("Len = %d", c.Len())
	}
	if ro := c.RelativeOccupancy(); ro <= 0 || ro > 1 {
		t.Errorf("RelativeOccupancy = %v", ro)
	}
}

func TestLSHPerBucketEviction(t *testing.T) {
	c := mustLSH(t, 8, LSHOptions{Bits: 2, BucketCapacity: 2, Tolerance: 0.01, Seed: 6})
	rng := vec.NewRand(7)
	// Fill far beyond the total capacity; Len must never exceed 2^2·2.
	for i := 0; i < 100; i++ {
		c.Put(vec.RandomGaussian(rng, 8), []int{i})
	}
	if c.Len() > c.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	if got := c.Stats().Evictions; got == 0 {
		t.Error("expected evictions after overfilling")
	}
}

func TestLSHNilQuery(t *testing.T) {
	c := mustLSH(t, 8, LSHOptions{Bits: 4, Tolerance: 1})
	if _, ok := c.Get(nil); ok {
		t.Error("nil Get should miss")
	}
	c.Put(nil, []int{1})
	if c.Len() != 0 {
		t.Error("nil Put should be ignored")
	}
}

func TestLSHClear(t *testing.T) {
	c := mustLSH(t, 8, LSHOptions{Bits: 4, Tolerance: 1, Seed: 8})
	rng := vec.NewRand(9)
	for i := 0; i < 10; i++ {
		c.Put(vec.RandomGaussian(rng, 8), []int{i})
	}
	c.Clear()
	if c.Len() != 0 || c.BucketsUsed() != 0 {
		t.Error("Clear should drop all buckets")
	}
	c.Put(vec.RandomGaussian(rng, 8), []int{1})
	if c.Len() != 1 {
		t.Error("cache unusable after Clear")
	}
}

func TestLSHSameSeedBucketsIdentically(t *testing.T) {
	mk := func() *LSHCache { return mustLSH(t, 16, LSHOptions{Bits: 8, Tolerance: 0.5, Seed: 42}) }
	a, b := mk(), mk()
	rng := vec.NewRand(10)
	for i := 0; i < 40; i++ {
		v := vec.RandomGaussian(rng, 16)
		a.Put(v, []int{i})
		b.Put(v, []int{i})
	}
	if a.BucketsUsed() != b.BucketsUsed() || a.Len() != b.Len() {
		t.Error("same seed must bucket identically")
	}
}

// Property: an LSH hit implies a flat cache over the same inserts would
// also hit (bucketing only filters candidates, never invents them).
func TestLSHHitImpliesFlatHit(t *testing.T) {
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		tol := float32(r.Float64() * 3)
		lshCache, err := NewLSH(4, LSHOptions{Bits: 4, BucketCapacity: 64, Tolerance: tol, Seed: seed})
		if err != nil {
			return false
		}
		flat, err := NewFlat(4, Options{Capacity: 1024, Tolerance: tol})
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			v := vec.RandomGaussian(r, 4)
			lshCache.Put(v, []int{i})
			flat.Put(v, []int{i})
		}
		for i := 0; i < 40; i++ {
			q := vec.RandomGaussian(r, 4)
			if _, lshHit := lshCache.Get(q); lshHit {
				if _, flatHit := flat.Get(q); !flatHit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: total entries never exceed 2^L·b and per-bucket occupancy
// never exceeds b.
func TestLSHCapacityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		bits := 2 + int(r.Uint64()%4)
		bcap := 1 + int(r.Uint64()%8)
		c, err := NewLSH(3, LSHOptions{Bits: bits, BucketCapacity: bcap, Tolerance: 0.1, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			c.Put(vec.RandomGaussian(r, 3), []int{i})
			if c.Len() > c.Capacity() {
				return false
			}
		}
		return c.BucketsUsed() <= 1<<bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLSHConcurrentAccess(t *testing.T) {
	c := mustLSH(t, 8, LSHOptions{Bits: 6, BucketCapacity: 8, Tolerance: 0.5, Seed: 11, Policy: LRU})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := vec.NewRand(uint64(100 + g))
			for i := 0; i < 400; i++ {
				v := vec.RandomGaussian(r, 8)
				if i%2 == 0 {
					c.Put(v, []int{i})
				} else {
					c.Get(v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Error("capacity invariant violated under concurrency")
	}
	s := c.Stats()
	if s.Puts == 0 || s.Lookups() == 0 {
		t.Error("counters missing operations")
	}
}
