package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"proximity/internal/vec"
)

// Snapshot persistence: a production middleware restarts without losing
// its warm cache. Snapshots preserve entries, per-line tolerances, and
// eviction order; cumulative counters restart at zero (they describe a
// process lifetime, not the cached state).
//
// The format is encoding/gob with a version tag; it is an internal
// format, not a cross-version interchange contract.

const snapshotVersion = 1

// flatSnapshot is the serialized form of a FlatCache.
type flatSnapshot struct {
	Version   int
	Dim       int
	Capacity  int
	Tolerance float32
	Metric    int
	Policy    int
	// Entries in eviction order, front (next to evict) first.
	Keys []vec.Vector
	Docs [][]int
	Tols []float32
}

// WriteSnapshot serializes the cache contents to w.
func (c *FlatCache) WriteSnapshot(w io.Writer) error {
	c.mu.Lock()
	snap := flatSnapshot{
		Version:   snapshotVersion,
		Dim:       c.dim,
		Capacity:  c.opts.Capacity,
		Tolerance: c.opts.Tolerance,
		Metric:    int(c.opts.Metric),
		Policy:    int(c.opts.Policy),
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*flatEntry)
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("core: corrupt eviction list element %T", el.Value)
		}
		snap.Keys = append(snap.Keys, vec.Clone(e.key))
		snap.Docs = append(snap.Docs, append([]int(nil), e.docs...))
		snap.Tols = append(snap.Tols, e.tol)
	}
	c.mu.Unlock()

	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadFlatSnapshot reconstructs a FlatCache from a snapshot.
func ReadFlatSnapshot(r io.Reader) (*FlatCache, error) {
	var snap flatSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.Keys) != len(snap.Docs) || len(snap.Keys) != len(snap.Tols) {
		return nil, fmt.Errorf("core: corrupt snapshot: %d keys, %d docs, %d tolerances",
			len(snap.Keys), len(snap.Docs), len(snap.Tols))
	}
	c, err := NewFlat(snap.Dim, Options{
		Capacity:  snap.Capacity,
		Tolerance: snap.Tolerance,
		Metric:    vec.Metric(snap.Metric),
		Policy:    Policy(snap.Policy),
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuild cache: %w", err)
	}
	for i, k := range snap.Keys {
		if len(k) != snap.Dim {
			return nil, fmt.Errorf("core: corrupt snapshot: key %d has dim %d, expected %d",
				i, len(k), snap.Dim)
		}
		c.PutWithTolerance(k, snap.Docs[i], snap.Tols[i])
	}
	// Reloading counted one Put per entry; restart the counters so the
	// new process observes a clean lifetime.
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
	return c, nil
}

// lshSnapshot is the serialized form of an LSHCache. Bucket assignment is
// not stored: keys re-hash into the same buckets because the hyperplane
// seed is preserved.
type lshSnapshot struct {
	Version        int
	Dim            int
	Bits           int
	BucketCapacity int
	Tolerance      float32
	Metric         int
	Policy         int
	Seed           uint64
	Probes         int
	Keys           []vec.Vector
	Docs           [][]int
	Tols           []float32
}

// WriteSnapshot serializes the cache contents to w. Within each bucket,
// eviction order is preserved; ordering across buckets is immaterial.
func (c *LSHCache) WriteSnapshot(w io.Writer) error {
	snap := lshSnapshot{
		Version:        snapshotVersion,
		Dim:            c.hasher.Dim(),
		Bits:           c.hasher.Bits(),
		BucketCapacity: c.bucket.Capacity,
		Tolerance:      c.bucket.Tolerance,
		Metric:         int(c.bucket.Metric),
		Policy:         int(c.bucket.Policy),
		Seed:           c.seed,
		Probes:         c.probes,
	}
	c.mu.RLock()
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.RUnlock()
	for _, b := range buckets {
		b.mu.Lock()
		for el := b.order.Front(); el != nil; el = el.Next() {
			e, ok := el.Value.(*flatEntry)
			if !ok {
				b.mu.Unlock()
				return fmt.Errorf("core: corrupt eviction list element %T", el.Value)
			}
			snap.Keys = append(snap.Keys, vec.Clone(e.key))
			snap.Docs = append(snap.Docs, append([]int(nil), e.docs...))
			snap.Tols = append(snap.Tols, e.tol)
		}
		b.mu.Unlock()
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadLSHSnapshot reconstructs an LSHCache from a snapshot.
func ReadLSHSnapshot(r io.Reader) (*LSHCache, error) {
	var snap lshSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.Keys) != len(snap.Docs) || len(snap.Keys) != len(snap.Tols) {
		return nil, fmt.Errorf("core: corrupt snapshot: %d keys, %d docs, %d tolerances",
			len(snap.Keys), len(snap.Docs), len(snap.Tols))
	}
	c, err := NewLSH(snap.Dim, LSHOptions{
		Bits:           snap.Bits,
		BucketCapacity: snap.BucketCapacity,
		Tolerance:      snap.Tolerance,
		Metric:         vec.Metric(snap.Metric),
		Policy:         Policy(snap.Policy),
		Seed:           snap.Seed,
		Probes:         snap.Probes,
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuild cache: %w", err)
	}
	for i, k := range snap.Keys {
		if len(k) != snap.Dim {
			return nil, fmt.Errorf("core: corrupt snapshot: key %d has dim %d, expected %d",
				i, len(k), snap.Dim)
		}
		c.PutWithTolerance(k, snap.Docs[i], snap.Tols[i])
	}
	c.mu.Lock()
	c.hashOps = 0
	c.missesOnEmpty = 0
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.Unlock()
	for _, b := range buckets {
		b.mu.Lock()
		b.stats = Stats{}
		b.mu.Unlock()
	}
	return c, nil
}
