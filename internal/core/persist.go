package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"proximity/internal/vec"
)

// Snapshot persistence: a production middleware restarts without losing
// its warm cache. Snapshots preserve entries, per-line tolerances, and
// eviction order; cumulative counters restart at zero (they describe a
// process lifetime, not the cached state).
//
// The format is a magic/version header followed by an encoding/gob
// payload; it is an internal format, not a cross-version interchange
// contract. Readers also accept headerless v0 snapshots (written before
// the header existed): the magic bytes cannot begin a valid gob stream,
// so the two formats are unambiguous.

const snapshotVersion = 1

// snapshotMagic prefixes every snapshot written since the header was
// introduced. A gob stream starts with a type-definition length whose
// first byte is small, so these bytes can never be confused with a
// legacy headerless snapshot.
var snapshotMagic = []byte("PXSNAP")

// snapshotFormatVersion is the on-disk format generation, written as a
// single byte after the magic. Bump it on incompatible layout changes;
// readers reject newer generations with ErrSnapshotVersion instead of
// feeding them to gob and decoding garbage.
const snapshotFormatVersion = 1

// ErrSnapshotVersion reports a snapshot written by an incompatible
// format generation (or a gob payload carrying an unknown version tag).
// Callers distinguish it from plain corruption: a version mismatch is
// expected across upgrades and warrants a cold start, not an alert.
var ErrSnapshotVersion = errors.New("core: unsupported snapshot version")

// writeSnapshotHeader emits the magic/version prefix.
func writeSnapshotHeader(w io.Writer) error {
	if _, err := w.Write(snapshotMagic); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	if _, err := w.Write([]byte{snapshotFormatVersion}); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	return nil
}

// consumeSnapshotHeader checks for the magic/version prefix on br,
// consuming it when present. Headerless (v0) snapshots pass through
// untouched for the gob decoder. A recognized magic with a newer format
// byte is ErrSnapshotVersion.
func consumeSnapshotHeader(br *bufio.Reader) error {
	head, err := br.Peek(len(snapshotMagic) + 1)
	if err != nil {
		// Too short to carry a header; let the gob decoder report the
		// truncation with its own context.
		return nil
	}
	if !bytes.Equal(head[:len(snapshotMagic)], snapshotMagic) {
		return nil // legacy v0: headerless gob
	}
	if v := head[len(snapshotMagic)]; v > snapshotFormatVersion {
		return fmt.Errorf("%w: format generation %d (this build reads up to %d)",
			ErrSnapshotVersion, v, snapshotFormatVersion)
	}
	if _, err := br.Discard(len(snapshotMagic) + 1); err != nil {
		return fmt.Errorf("core: consume snapshot header: %w", err)
	}
	return nil
}

// WriteFileAtomic writes a file via a temp-file-and-rename so a crash
// mid-write can never leave a torn file at path: the rename is atomic on
// POSIX filesystems, so readers observe either the old content or the
// complete new one. The temp file lives in path's directory (renames
// across filesystems are not atomic) and is cleaned up on failure.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: create temp snapshot: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: flush snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("core: sync snapshot: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("core: close snapshot: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("core: rename snapshot into place: %w", err)
	}
	return nil
}

// flatSnapshot is the serialized form of a FlatCache.
type flatSnapshot struct {
	Version   int
	Dim       int
	Capacity  int
	Tolerance float32
	Metric    int
	Policy    int
	// Entries in eviction order, front (next to evict) first.
	Keys []vec.Vector
	Docs [][]int
	Tols []float32
}

// WriteSnapshot serializes the cache contents to w.
func (c *FlatCache) WriteSnapshot(w io.Writer) error {
	c.mu.Lock()
	snap := flatSnapshot{
		Version:   snapshotVersion,
		Dim:       c.dim,
		Capacity:  c.opts.Capacity,
		Tolerance: c.opts.Tolerance,
		Metric:    int(c.opts.Metric),
		Policy:    int(c.opts.Policy),
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		e, ok := el.Value.(*flatEntry)
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("core: corrupt eviction list element %T", el.Value)
		}
		snap.Keys = append(snap.Keys, vec.Clone(e.key))
		snap.Docs = append(snap.Docs, append([]int(nil), e.docs...))
		snap.Tols = append(snap.Tols, e.tol)
	}
	c.mu.Unlock()

	if err := writeSnapshotHeader(w); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadFlatSnapshot reconstructs a FlatCache from a snapshot. Both the
// current headered format and legacy headerless (v0) snapshots are
// accepted; a snapshot from a newer format generation returns an error
// wrapping ErrSnapshotVersion.
func ReadFlatSnapshot(r io.Reader) (*FlatCache, error) {
	br := bufio.NewReader(r)
	if err := consumeSnapshotHeader(br); err != nil {
		return nil, err
	}
	var snap flatSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: payload version %d", ErrSnapshotVersion, snap.Version)
	}
	if len(snap.Keys) != len(snap.Docs) || len(snap.Keys) != len(snap.Tols) {
		return nil, fmt.Errorf("core: corrupt snapshot: %d keys, %d docs, %d tolerances",
			len(snap.Keys), len(snap.Docs), len(snap.Tols))
	}
	c, err := NewFlat(snap.Dim, Options{
		Capacity:  snap.Capacity,
		Tolerance: snap.Tolerance,
		Metric:    vec.Metric(snap.Metric),
		Policy:    Policy(snap.Policy),
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuild cache: %w", err)
	}
	for i, k := range snap.Keys {
		if len(k) != snap.Dim {
			return nil, fmt.Errorf("core: corrupt snapshot: key %d has dim %d, expected %d",
				i, len(k), snap.Dim)
		}
		c.PutWithTolerance(k, snap.Docs[i], snap.Tols[i])
	}
	// Reloading counted one Put per entry; restart the counters so the
	// new process observes a clean lifetime.
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
	return c, nil
}

// lshSnapshot is the serialized form of an LSHCache. Bucket assignment is
// not stored: keys re-hash into the same buckets because the hyperplane
// seed is preserved.
type lshSnapshot struct {
	Version        int
	Dim            int
	Bits           int
	BucketCapacity int
	Tolerance      float32
	Metric         int
	Policy         int
	Seed           uint64
	Probes         int
	Keys           []vec.Vector
	Docs           [][]int
	Tols           []float32
}

// WriteSnapshot serializes the cache contents to w. Within each bucket,
// eviction order is preserved; ordering across buckets is immaterial.
func (c *LSHCache) WriteSnapshot(w io.Writer) error {
	snap := lshSnapshot{
		Version:        snapshotVersion,
		Dim:            c.hasher.Dim(),
		Bits:           c.hasher.Bits(),
		BucketCapacity: c.bucket.Capacity,
		Tolerance:      c.bucket.Tolerance,
		Metric:         int(c.bucket.Metric),
		Policy:         int(c.bucket.Policy),
		Seed:           c.seed,
		Probes:         c.probes,
	}
	c.mu.RLock()
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.RUnlock()
	for _, b := range buckets {
		b.mu.Lock()
		for el := b.order.Front(); el != nil; el = el.Next() {
			e, ok := el.Value.(*flatEntry)
			if !ok {
				b.mu.Unlock()
				return fmt.Errorf("core: corrupt eviction list element %T", el.Value)
			}
			snap.Keys = append(snap.Keys, vec.Clone(e.key))
			snap.Docs = append(snap.Docs, append([]int(nil), e.docs...))
			snap.Tols = append(snap.Tols, e.tol)
		}
		b.mu.Unlock()
	}
	if err := writeSnapshotHeader(w); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	return nil
}

// ReadLSHSnapshot reconstructs an LSHCache from a snapshot. Both the
// current headered format and legacy headerless (v0) snapshots are
// accepted; a snapshot from a newer format generation returns an error
// wrapping ErrSnapshotVersion.
func ReadLSHSnapshot(r io.Reader) (*LSHCache, error) {
	br := bufio.NewReader(r)
	if err := consumeSnapshotHeader(br); err != nil {
		return nil, err
	}
	var snap lshSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: payload version %d", ErrSnapshotVersion, snap.Version)
	}
	if len(snap.Keys) != len(snap.Docs) || len(snap.Keys) != len(snap.Tols) {
		return nil, fmt.Errorf("core: corrupt snapshot: %d keys, %d docs, %d tolerances",
			len(snap.Keys), len(snap.Docs), len(snap.Tols))
	}
	c, err := NewLSH(snap.Dim, LSHOptions{
		Bits:           snap.Bits,
		BucketCapacity: snap.BucketCapacity,
		Tolerance:      snap.Tolerance,
		Metric:         vec.Metric(snap.Metric),
		Policy:         Policy(snap.Policy),
		Seed:           snap.Seed,
		Probes:         snap.Probes,
	})
	if err != nil {
		return nil, fmt.Errorf("core: rebuild cache: %w", err)
	}
	for i, k := range snap.Keys {
		if len(k) != snap.Dim {
			return nil, fmt.Errorf("core: corrupt snapshot: key %d has dim %d, expected %d",
				i, len(k), snap.Dim)
		}
		c.PutWithTolerance(k, snap.Docs[i], snap.Tols[i])
	}
	c.mu.Lock()
	c.hashOps = 0
	c.missesOnEmpty = 0
	buckets := make([]*FlatCache, 0, len(c.buckets))
	for _, b := range c.buckets {
		buckets = append(buckets, b)
	}
	c.mu.Unlock()
	for _, b := range buckets {
		b.mu.Lock()
		b.stats = Stats{}
		b.mu.Unlock()
	}
	return c, nil
}

// entrySnapshot is the variant-agnostic serialized form of a cache's
// contents: just the entries in eviction order, without the construction
// options. Any EntrySource can write one, and any cache can be refilled
// from one by replaying PutWithTolerance — the cold-tier format of the
// tiered hierarchy, and the interchange format for moving contents
// between cache variants.
type entrySnapshot struct {
	Version int
	Dim     int
	Keys    []vec.Vector
	Docs    [][]int
	Tols    []float32
}

// WriteEntrySnapshot serializes src's entries (in src's enumeration
// order, which is eviction order where the source defines one) to w.
func WriteEntrySnapshot(w io.Writer, dim int, src EntrySource) error {
	snap := entrySnapshot{Version: snapshotVersion, Dim: dim}
	for _, e := range src.Entries() {
		snap.Keys = append(snap.Keys, e.Key)
		snap.Docs = append(snap.Docs, e.Docs)
		snap.Tols = append(snap.Tols, e.Tol)
	}
	if err := writeSnapshotHeader(w); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode entry snapshot: %w", err)
	}
	return nil
}

// ReadEntrySnapshot decodes an entry snapshot, returning the embedding
// dimension and the entries in their serialized order. Replaying them in
// that order through PutWithTolerance reproduces the snapshotted
// contents and eviction sequence in any cache variant.
func ReadEntrySnapshot(r io.Reader) (dim int, entries []Entry, err error) {
	br := bufio.NewReader(r)
	if err := consumeSnapshotHeader(br); err != nil {
		return 0, nil, err
	}
	var snap entrySnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return 0, nil, fmt.Errorf("core: decode entry snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, nil, fmt.Errorf("%w: payload version %d", ErrSnapshotVersion, snap.Version)
	}
	if len(snap.Keys) != len(snap.Docs) || len(snap.Keys) != len(snap.Tols) {
		return 0, nil, fmt.Errorf("core: corrupt snapshot: %d keys, %d docs, %d tolerances",
			len(snap.Keys), len(snap.Docs), len(snap.Tols))
	}
	entries = make([]Entry, len(snap.Keys))
	for i, k := range snap.Keys {
		if len(k) != snap.Dim {
			return 0, nil, fmt.Errorf("core: corrupt snapshot: key %d has dim %d, expected %d",
				i, len(k), snap.Dim)
		}
		entries[i] = Entry{Key: k, Docs: snap.Docs[i], Tol: snap.Tols[i]}
	}
	return snap.Dim, entries, nil
}
