package rebalance

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced batch.Clock: Tick-driven tests set
// the time explicitly, so window and cooldown arithmetic is exact.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(time.Duration) <-chan time.Time {
	// The loop is never started in these tests; Tick is driven by hand.
	return make(chan time.Time)
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// fakeSource serves a settable sample.
type fakeSource struct {
	mu     sync.Mutex
	sample Sample
}

func (s *fakeSource) set(imb float64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sample = Sample{Imbalance: imb, Entries: entries}
}

func (s *fakeSource) Sample() Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sample
}

// fakeActuator records invocations and returns a scripted outcome.
type fakeActuator struct {
	mu    sync.Mutex
	calls int
	out   Outcome
	err   error
}

func (a *fakeActuator) Rebalance(Sample) (Outcome, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	return a.out, a.err
}

func (a *fakeActuator) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

func newTestController(t *testing.T, clk *fakeClock, src *fakeSource, act *fakeActuator, opts Options) *Controller {
	t.Helper()
	opts.Clock = clk
	c, err := New(src, act, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestNewValidation(t *testing.T) {
	src, act := &fakeSource{}, &fakeActuator{}
	if _, err := New(nil, act, Options{}); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := New(src, nil, Options{}); err == nil {
		t.Error("nil actuator should fail")
	}
	if _, err := New(src, act, Options{Threshold: 1.0}); err == nil {
		t.Error("threshold at perfect balance should fail")
	}
	if _, err := New(src, act, Options{Threshold: 0.5}); err == nil {
		t.Error("threshold below 1 should fail")
	}
}

// TestSustainedBreachTriggers: one breaching sample is not enough; the
// breach must hold for the window, and then the actuator fires once.
func TestSustainedBreachTriggers(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true, Before: 2, After: 1.1, Moved: 5}}
	c := newTestController(t, clk, src, act, Options{
		Threshold:  1.5,
		Interval:   time.Second,
		Window:     3 * time.Second,
		Cooldown:   time.Minute,
		MinEntries: 10,
	})

	src.set(2.0, 100)
	for i := 0; i < 3; i++ { // t=0,1,2: breach standing but window not met
		c.Tick()
		clk.advance(time.Second)
	}
	if got := act.count(); got != 0 {
		t.Fatalf("actuator fired %d times before the window elapsed", got)
	}
	c.Tick() // t=3: sustained for 3s -> fire
	if got := act.count(); got != 1 {
		t.Fatalf("actuator fired %d times after the window, want 1", got)
	}
	st := c.Stats()
	if st.Samples != 4 || st.Breaches != 4 || st.Triggers != 1 || st.Rebalances != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LastOutcome.Moved != 5 {
		t.Errorf("LastOutcome = %+v", st.LastOutcome)
	}

	// Cooldown suppresses the still-breaching signal...
	clk.advance(time.Second)
	c.Tick()
	if got := act.count(); got != 1 {
		t.Fatalf("actuator fired during cooldown (%d calls)", got)
	}
	// ...until it lapses AND the breach re-sustains its window.
	clk.advance(2 * time.Minute)
	for i := 0; i < 4; i++ {
		c.Tick()
		clk.advance(time.Second)
	}
	if got := act.count(); got != 2 {
		t.Errorf("actuator calls after cooldown = %d, want 2", got)
	}
}

// TestBreachMustBeContinuous: a dip back under threshold resets the
// window — two separated bursts must not add up to one sustained breach.
func TestBreachMustBeContinuous(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true}}
	c := newTestController(t, clk, src, act, Options{
		Threshold:  1.5,
		Interval:   time.Second,
		Window:     2 * time.Second,
		MinEntries: -1,
	})
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			src.set(3.0, 100) // burst
		} else {
			src.set(1.0, 100) // dip resets the window
		}
		c.Tick()
		clk.advance(time.Second)
	}
	if got := act.count(); got != 0 {
		t.Errorf("interrupted breaches fired the actuator %d times", got)
	}
}

// TestMinEntriesGate: imbalance over a nearly-empty cache is noise.
func TestMinEntriesGate(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true}}
	c := newTestController(t, clk, src, act, Options{
		Threshold:  1.5,
		Interval:   time.Second,
		Window:     -1, // act on first breach
		MinEntries: 50,
	})
	src.set(5.0, 10) // wildly imbalanced but tiny
	c.Tick()
	if act.count() != 0 {
		t.Error("actuator fired below MinEntries")
	}
	if st := c.Stats(); st.Breaches != 0 {
		t.Errorf("undersized samples counted as breaches: %+v", st)
	}
	src.set(5.0, 50)
	c.Tick()
	if act.count() != 1 {
		t.Error("actuator should fire once entries reach the gate")
	}
}

// TestDeclinedAndFailedAccounting: actuator outcomes are filed under the
// right counters.
func TestDeclinedAndFailedAccounting(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: false, Detail: "nothing better"}}
	c := newTestController(t, clk, src, act, Options{
		Threshold:  1.5,
		Interval:   time.Second,
		Window:     -1,
		Cooldown:   time.Millisecond,
		MinEntries: -1,
	})
	src.set(2.0, 100)
	c.Tick()
	st := c.Stats()
	if st.Declined != 1 || st.Rebalances != 0 {
		t.Errorf("declined outcome misfiled: %+v", st)
	}
	if st.LastOutcome.Detail != "nothing better" {
		t.Errorf("LastOutcome = %+v", st.LastOutcome)
	}

	act.mu.Lock()
	act.err = errors.New("boom")
	act.mu.Unlock()
	clk.advance(time.Second)
	c.Tick()
	st = c.Stats()
	if st.Failures != 1 {
		t.Errorf("failure misfiled: %+v", st)
	}
	if st.LastError != "boom" {
		t.Errorf("LastError = %q", st.LastError)
	}
}

// TestTriggerNow bypasses threshold/window/cooldown but still arms the
// cooldown afterwards.
func TestTriggerNow(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true, Before: 1.1, After: 1.0}}
	c := newTestController(t, clk, src, act, Options{
		Threshold: 1.5,
		Interval:  time.Second,
		Window:    -1,
		Cooldown:  time.Minute,
	})
	src.set(1.0, 0) // in balance, empty: the policy would never fire
	out, err := c.TriggerNow()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Acted || act.count() != 1 {
		t.Fatalf("manual trigger did not act: %+v", out)
	}
	// The policy loop now honors the manual action's cooldown.
	src.set(9.0, 1000)
	clk.advance(time.Second)
	c.Tick()
	if act.count() != 1 {
		t.Error("policy fired inside the manual trigger's cooldown")
	}
}

// TestClosedController: Start after Close fails, Tick and TriggerNow are
// inert.
func TestClosedController(t *testing.T) {
	clk := newFakeClock()
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true}}
	c := newTestController(t, clk, src, act, Options{Threshold: 1.5, Window: -1, MinEntries: -1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close = %v, want ErrClosed", err)
	}
	if _, err := c.TriggerNow(); !errors.Is(err, ErrClosed) {
		t.Errorf("TriggerNow after Close = %v, want ErrClosed", err)
	}
	src.set(9.0, 1000)
	c.Tick()
	if act.count() != 0 {
		t.Error("Tick acted on a closed controller")
	}
}

// TestStartedLoopFires: the real goroutine loop samples and acts (system
// clock, tiny interval — a smoke test for the wiring the fake-clock
// tests bypass).
func TestStartedLoopFires(t *testing.T) {
	src := &fakeSource{}
	act := &fakeActuator{out: Outcome{Acted: true}}
	src.set(3.0, 1000)
	c, err := New(src, act, Options{
		Threshold:  1.5,
		Interval:   time.Millisecond,
		Window:     -1,
		MinEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil { // idempotent
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for act.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if act.count() == 0 {
		t.Fatal("started loop never fired the actuator")
	}
}
