package rebalance

import (
	"fmt"
	"math"
	"sync/atomic"

	"proximity/internal/shard"
)

// Shard-target defaults.
const (
	// DefaultCandidates is the number of fresh partitioner seeds
	// auditioned per action.
	DefaultCandidates = 8
	// DefaultMinGain is the minimum relative predicted improvement
	// required before committing a migration: the best candidate's
	// predicted imbalance must be at most (1 - MinGain) of the current
	// one. Re-draws below this bar are not worth the transient misses.
	DefaultMinGain = 0.05
)

// ShardTargetOptions tunes a ShardTarget.
type ShardTargetOptions struct {
	// Candidates is the number of fresh seeds auditioned per action.
	// Defaults to DefaultCandidates.
	Candidates int
	// MinGain is the minimum relative predicted improvement required to
	// migrate. Defaults to DefaultMinGain; pass a negative value for an
	// explicit zero bar.
	MinGain float64
	// OnReseed, when set, is invoked after every committed migration
	// with the new seed. The facade uses it to keep a CoalesceLSH batch
	// pipeline's duplicate-detection signatures in step with the
	// re-drawn partitioner (see batch.Pipeline.Reseed).
	OnReseed func(seed uint64)
}

func (o *ShardTargetOptions) fillDefaults() {
	if o.Candidates <= 0 {
		o.Candidates = DefaultCandidates
	}
	if o.MinGain == 0 {
		o.MinGain = DefaultMinGain
	} else if o.MinGain < 0 {
		o.MinGain = 0
	}
}

// ShardTarget adapts a shard.ShardedCache to the controller: Sample
// reads the pressure report, and Rebalance auditions candidate
// partitioner seeds against the live contents (PreviewSeed), committing
// the best one via the shard-by-shard Reseed migration — or declining
// when no candidate clears the MinGain bar, so the controller's cooldown
// absorbs unfixable skew (e.g. one genuinely hot semantic cluster that
// every hyperplane draw maps to a single signature).
type ShardTarget struct {
	cache *shard.ShardedCache
	opts  ShardTargetOptions
	// cursor walks a deterministic candidate-seed sequence starting
	// after the construction seed, so a fixed setup auditions the same
	// draws in the same order (reproducible experiments).
	cursor atomic.Uint64
}

var (
	_ Source   = (*ShardTarget)(nil)
	_ Actuator = (*ShardTarget)(nil)
)

// NewShardTarget wires a re-draw actuator over the cache. Only
// LSH-signature routing is re-drawable; fingerprint-partitioned caches
// are rejected up front (shard.ErrFingerprintPartition).
func NewShardTarget(cache *shard.ShardedCache, opts ShardTargetOptions) (*ShardTarget, error) {
	if cache == nil {
		return nil, fmt.Errorf("rebalance: a sharded cache is required")
	}
	if cache.Partition() != shard.LSHSignature {
		return nil, shard.ErrFingerprintPartition
	}
	opts.fillDefaults()
	t := &ShardTarget{cache: cache, opts: opts}
	t.cursor.Store(cache.Seed())
	return t, nil
}

// Cache returns the wrapped sharded cache.
func (t *ShardTarget) Cache() *shard.ShardedCache { return t.cache }

// Sample implements Source from the pressure report.
func (t *ShardTarget) Sample() Sample {
	r := t.cache.Report()
	return Sample{Imbalance: r.Imbalance, Entries: r.Entries}
}

// Rebalance implements Actuator: audition Candidates fresh seeds, commit
// the best predicted draw if it clears the MinGain bar, decline
// otherwise.
func (t *ShardTarget) Rebalance(Sample) (Outcome, error) {
	// Re-measure rather than trusting the trigger sample: the breach
	// window means the trigger is at least one interval old.
	current := t.cache.Report().Imbalance
	seeds := make([]uint64, t.opts.Candidates)
	for i := range seeds {
		seeds[i] = t.cursor.Add(1)
	}
	// One contents snapshot scores the whole candidate set.
	preds, err := t.cache.PreviewSeeds(seeds)
	if err != nil {
		return Outcome{}, err
	}
	bestPred := current
	bestSeen := math.Inf(1) // best candidate even when it beats nothing
	var bestSeed uint64
	found := false
	for i, pred := range preds {
		if pred < bestSeen {
			bestSeen = pred
		}
		if pred < bestPred {
			bestSeed, bestPred, found = seeds[i], pred, true
		}
	}
	if !found || bestPred > current*(1-t.opts.MinGain) {
		return Outcome{
			Before: current,
			After:  current,
			Detail: fmt.Sprintf("declined: no draw beat imbalance %.2f by %.0f%% over %d candidates (best candidate predicted %.2f)",
				current, 100*t.opts.MinGain, t.opts.Candidates, bestSeen),
		}, nil
	}
	m, err := t.cache.Reseed(bestSeed)
	if err != nil {
		return Outcome{}, err
	}
	if t.opts.OnReseed != nil {
		t.opts.OnReseed(bestSeed)
	}
	return Outcome{
		Acted:  true,
		Before: m.Before,
		After:  m.After,
		Moved:  m.Moved,
		Detail: m.String(),
	}, nil
}
