package rebalance

import (
	"errors"
	"testing"

	"proximity/internal/core"
	"proximity/internal/shard"
	"proximity/internal/vec"
)

const testDim = 32

// skewedCache builds a sharded FLAT cache filled with clustered keys
// under a deliberately coarse signature, auditioning a few construction
// seeds and keeping the most imbalanced — so the target has real skew to
// fix.
func skewedCache(t *testing.T) *shard.ShardedCache {
	t.Helper()
	newCache := func(seed uint64) *shard.ShardedCache {
		c, err := shard.New(testDim, shard.Options{
			Shards:        4,
			Seed:          seed,
			SignatureBits: 4,
			New: func(int) (core.Cache, error) {
				return core.NewFlat(testDim, core.Options{Capacity: 256, Tolerance: 0.5})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fill := func(c *shard.ShardedCache) {
		rng := vec.NewRand(7)
		for cl := 0; cl < 8; cl++ {
			center := vec.RandomGaussian(rng, testDim)
			for m := 0; m < 16; m++ {
				q := vec.Clone(center)
				jitter := vec.RandomGaussian(rng, testDim)
				for d := range q {
					q[d] += 0.1 * jitter[d]
				}
				c.Put(q, []int{cl})
			}
		}
	}
	best := newCache(1)
	fill(best)
	worst := best.Report().Imbalance
	for seed := uint64(2); seed < 10; seed++ {
		c := newCache(seed)
		fill(c)
		if imb := c.Report().Imbalance; imb > worst {
			best, worst = c, imb
		}
	}
	return best
}

func TestNewShardTargetValidation(t *testing.T) {
	if _, err := NewShardTarget(nil, ShardTargetOptions{}); err == nil {
		t.Error("nil cache should fail")
	}
	fp, err := shard.New(testDim, shard.Options{
		Shards:    2,
		Partition: shard.Fingerprint,
		New: func(int) (core.Cache, error) {
			return core.NewFlat(testDim, core.Options{Capacity: 8, Tolerance: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardTarget(fp, ShardTargetOptions{}); !errors.Is(err, shard.ErrFingerprintPartition) {
		t.Errorf("fingerprint target error = %v, want ErrFingerprintPartition", err)
	}
}

// TestShardTargetImprovesSkew: the actuator auditions candidate draws
// and the committed migration lowers the measured imbalance; the reseed
// hook reports the chosen seed.
func TestShardTargetImprovesSkew(t *testing.T) {
	cache := skewedCache(t)
	before := cache.Report().Imbalance
	var hookSeed uint64
	target, err := NewShardTarget(cache, ShardTargetOptions{
		Candidates: 16,
		OnReseed:   func(seed uint64) { hookSeed = seed },
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := target.Sample(); s.Imbalance != before || s.Entries != cache.Len() {
		t.Errorf("Sample = %+v, want imbalance %v entries %d", s, before, cache.Len())
	}
	out, err := target.Rebalance(target.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Acted {
		t.Fatalf("declined on a skewed cache: %s", out.Detail)
	}
	if out.After >= out.Before {
		t.Errorf("migration did not improve imbalance: %v -> %v", out.Before, out.After)
	}
	if got := cache.Report().Imbalance; got != out.After {
		t.Errorf("reported imbalance %v != outcome %v", got, out.After)
	}
	if hookSeed == 0 || hookSeed != cache.Seed() {
		t.Errorf("OnReseed hook saw seed %d, cache has %d", hookSeed, cache.Seed())
	}
	if target.Cache() != cache {
		t.Error("Cache() accessor mismatch")
	}
}

// TestShardTargetDeclinesWhenNothingBetter: an exhausted candidate
// budget on an already-balanced cache declines instead of thrashing.
func TestShardTargetDeclinesWhenNothingBetter(t *testing.T) {
	c, err := shard.New(testDim, shard.Options{
		Shards: 4,
		Seed:   1,
		New: func(int) (core.Cache, error) {
			return core.NewFlat(testDim, core.Options{Capacity: 64, Tolerance: 0.5})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Empty cache: imbalance is pinned at the perfect 1.0, which no
	// draw can beat.
	target, err := NewShardTarget(c, ShardTargetOptions{Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := target.Rebalance(target.Sample())
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Errorf("acted on a perfectly balanced cache: %+v", out)
	}
	if out.Detail == "" {
		t.Error("declined outcome should explain itself")
	}
	if c.Seed() != 1 {
		t.Error("declined action must not reseed")
	}
}
