// Package rebalance closes the loop between the eviction-pressure report
// and the knobs that can act on it: it watches a load-imbalance signal
// and, when the imbalance stays above a threshold for a sustained window,
// triggers a corrective action.
//
// # Why a controller
//
// PR 2 built the sensor: shard.PressureReport.Imbalance exposes how
// unevenly the partitioner spreads keys (max shard entries over mean).
// A Zipf-skewed query stream — the paper's serving workload, and the
// regime RAGCache (arXiv:2404.12457) identifies as the scale bottleneck —
// concentrates LSH signatures on a few shards, so one hot shard's lock
// and evictions dominate tail latency while cold shards idle. The
// ROADMAP's open item was to act on the signal; this package is the
// actuator loop.
//
// # Design
//
// The controller is deliberately dumb and generic: it samples a Source
// (imbalance + entry count) on an interval, requires the breach to be
// sustained (one hot burst must not trigger a migration), respects a
// cooldown after every attempt (a rebalance that did not help must not
// retry in a tight loop), and delegates the correction to an Actuator.
// Two actuators exist:
//
//   - ShardTarget (this package) re-draws the in-process partitioner:
//     it auditions candidate hyperplane seeds with
//     shard.ShardedCache.PreviewSeed — predicting each candidate's
//     imbalance against the live contents — and commits the best one via
//     Reseed, which migrates entries shard-by-shard without a
//     stop-the-world lock. If no candidate beats the current draw by
//     MinGain, it declines (Outcome.Acted=false) and the cooldown
//     prevents thrashing.
//
//   - cluster.Balancer (internal/cluster) acts at the network tier: it
//     derives per-node load shares from the cluster's aggregated
//     hit/miss stats and shifts consistent-hash arcs off overloaded
//     nodes by re-weighting their virtual-node counts
//     (cluster.Client.Rebalance).
//
// Both plug into the same Controller, so the middleware runs one policy
// ("sustained imbalance above T → rebalance, then hold off") at either
// tier. The controller never blocks the serving path: sampling reads
// counters, and the actuator's migration is shard-at-a-time (in-process)
// or a ring swap (cluster).
//
// # Safety
//
// Everything the actuators do is loss-bounded: an in-process re-draw can
// only cause transient misses while entries re-home (never a wrong
// answer — the cache is approximate by construction), and a ring
// re-weight only changes which node serves a key next. Zero failed
// queries during migration is a test invariant (see shard's concurrent
// migration tests and the bench harness's rebalance experiment).
package rebalance
