package rebalance

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"proximity/internal/batch"
)

// Sample is one observation of the balance signal.
type Sample struct {
	// Imbalance is max load over mean load (1.0 = perfectly even; the
	// shard tier uses entry counts, the cluster tier lookup shares).
	Imbalance float64
	// Entries is the total entry count behind the signal, so the
	// controller can ignore imbalance over a nearly-empty cache.
	Entries int
}

// Source delivers balance samples. Implementations must be safe for
// concurrent use.
type Source interface {
	Sample() Sample
}

// Outcome reports one actuator invocation.
type Outcome struct {
	// Acted reports whether the actuator changed anything; false means
	// it declined (e.g. no candidate seed beat the current draw).
	Acted bool
	// Before and After are the imbalance on either side of the action
	// (After == Before when not Acted).
	Before float64
	After  float64
	// Moved counts entries (or virtual nodes) relocated.
	Moved int
	// Detail is a human-readable summary for logs and the admin
	// endpoint.
	Detail string
}

// Actuator applies one corrective action. Implementations must be safe
// for concurrent use; the controller never invokes it concurrently with
// itself.
type Actuator interface {
	Rebalance(trigger Sample) (Outcome, error)
}

// Defaults for Options zero values.
const (
	DefaultThreshold  = 1.5
	DefaultInterval   = 500 * time.Millisecond
	DefaultWindow     = 2 * time.Second
	DefaultCooldown   = 10 * time.Second
	DefaultMinEntries = 64
)

// Options tunes a Controller.
type Options struct {
	// Threshold is the imbalance above which a sample counts as a
	// breach. Defaults to DefaultThreshold; must exceed 1 (an imbalance
	// of 1.0 is perfect balance).
	Threshold float64
	// Interval is the sampling period. Defaults to DefaultInterval.
	Interval time.Duration
	// Window is how long the breach must be sustained before the
	// actuator fires — one hot burst must not trigger a migration.
	// 0 means act on the first breach. Defaults to DefaultWindow; pass
	// a negative value for an explicit zero window.
	Window time.Duration
	// Cooldown is the hold-off after every actuator invocation
	// (successful, declined, or failed), preventing thrash when a
	// rebalance cannot help. Defaults to DefaultCooldown.
	Cooldown time.Duration
	// MinEntries gates actions on cache size: imbalance over a handful
	// of entries is noise. Defaults to DefaultMinEntries; pass a
	// negative value for an explicit zero minimum.
	MinEntries int
	// Clock drives the sampling loop; tests inject a fake. Defaults to
	// batch.SystemClock.
	Clock batch.Clock
}

func (o *Options) fillDefaults() {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	} else if o.Window < 0 {
		o.Window = 0
	}
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	if o.MinEntries == 0 {
		o.MinEntries = DefaultMinEntries
	} else if o.MinEntries < 0 {
		o.MinEntries = 0
	}
	if o.Clock == nil {
		o.Clock = batch.SystemClock{}
	}
}

// Stats are the controller's cumulative counters plus the latest
// observation — the operational view the server's stats endpoint
// exposes.
type Stats struct {
	// Samples counts observations; Breaches the subset above threshold.
	Samples  int64
	Breaches int64
	// Triggers counts actuator invocations from sustained breaches;
	// Rebalances the subset that acted, Declined the subset where the
	// actuator found nothing better, Failures the subset that errored.
	Triggers   int64
	Rebalances int64
	Declined   int64
	Failures   int64
	// LastSample is the most recent observation; LastOutcome the most
	// recent actuator result (zero until the first trigger); LastError
	// the most recent actuator failure message ("" if none).
	LastSample  Sample
	LastOutcome Outcome
	LastError   string
}

// ErrClosed is returned by operations on a closed Controller.
var ErrClosed = errors.New("rebalance: controller closed")

// ErrBusy is returned by TriggerNow when an action is already in
// progress — a retryable collision, unlike an actuator failure (the
// admin endpoint maps the two to 409 vs 500).
var ErrBusy = errors.New("rebalance: an action is already in progress")

// Controller runs the watch-and-act loop: Sample every Interval, and
// when Imbalance stays above Threshold for Window (with at least
// MinEntries behind it), invoke the Actuator, then hold off for
// Cooldown. Create with New, start the loop with Start, stop it with
// Close; TriggerNow bypasses the policy for the admin endpoint.
type Controller struct {
	src  Source
	act  Actuator
	opts Options

	mu          sync.Mutex
	stats       Stats
	breachSince time.Time // zero when the last sample was in balance
	holdUntil   time.Time // cooldown horizon
	actBusy     bool      // an actuator invocation is in progress
	started     bool
	closed      bool
	stop        chan struct{}
	done        chan struct{}
}

// New validates the wiring and returns an idle controller (no goroutine
// until Start).
func New(src Source, act Actuator, opts Options) (*Controller, error) {
	if src == nil {
		return nil, errors.New("rebalance: a sample source is required")
	}
	if act == nil {
		return nil, errors.New("rebalance: an actuator is required")
	}
	opts.fillDefaults()
	if opts.Threshold <= 1 {
		return nil, fmt.Errorf("rebalance: threshold must exceed 1.0 (perfect balance), got %v", opts.Threshold)
	}
	return &Controller{
		src:  src,
		act:  act,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Options returns the resolved configuration.
func (c *Controller) Options() Options { return c.opts }

// Start launches the sampling loop. Idempotent; returns ErrClosed after
// Close.
func (c *Controller) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.started {
		return nil
	}
	c.started = true
	go c.loop()
	return nil
}

func (c *Controller) loop() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.opts.Clock.After(c.opts.Interval):
			c.Tick()
		}
	}
}

// Close stops the sampling loop and waits for it to exit. Safe to call
// multiple times.
func (c *Controller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	started := c.started
	close(c.stop)
	c.mu.Unlock()
	if started {
		<-c.done
	}
	return nil
}

// Tick performs one sample-evaluate-act cycle: the loop body, exported
// so tests (and a caller driving its own scheduler) can step the policy
// deterministically.
func (c *Controller) Tick() {
	now := c.opts.Clock.Now()
	sample := c.src.Sample()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.stats.Samples++
	c.stats.LastSample = sample
	breaching := sample.Imbalance > c.opts.Threshold && sample.Entries >= c.opts.MinEntries
	if !breaching {
		c.breachSince = time.Time{}
		c.mu.Unlock()
		return
	}
	c.stats.Breaches++
	if c.breachSince.IsZero() {
		c.breachSince = now
	}
	sustained := now.Sub(c.breachSince) >= c.opts.Window
	coolingDown := now.Before(c.holdUntil)
	if !sustained || coolingDown || c.actBusy {
		c.mu.Unlock()
		return
	}
	c.actBusy = true
	c.stats.Triggers++
	c.mu.Unlock()

	// The actuator runs outside the lock: a migration takes real time
	// and Stats/TriggerNow must not block behind it.
	out, err := c.act.Rebalance(sample)

	c.mu.Lock()
	c.actBusy = false
	c.breachSince = time.Time{}
	c.holdUntil = c.opts.Clock.Now().Add(c.opts.Cooldown)
	c.recordLocked(out, err)
	c.mu.Unlock()
}

// TriggerNow invokes the actuator immediately, bypassing threshold,
// window, and cooldown — the admin endpoint's manual override. The
// post-action cooldown still arms, so a manual rebalance also quiets the
// automatic loop for a while. Returns ErrClosed on a closed controller
// and the actuator's error otherwise.
func (c *Controller) TriggerNow() (Outcome, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Outcome{}, ErrClosed
	}
	if c.actBusy {
		c.mu.Unlock()
		return Outcome{}, ErrBusy
	}
	c.actBusy = true
	c.stats.Triggers++
	c.mu.Unlock()

	sample := c.src.Sample()
	out, err := c.act.Rebalance(sample)

	c.mu.Lock()
	c.actBusy = false
	c.breachSince = time.Time{}
	c.holdUntil = c.opts.Clock.Now().Add(c.opts.Cooldown)
	c.recordLocked(out, err)
	c.mu.Unlock()
	return out, err
}

// recordLocked files an actuator result into the counters.
func (c *Controller) recordLocked(out Outcome, err error) {
	switch {
	case err != nil:
		c.stats.Failures++
		c.stats.LastError = err.Error()
	case out.Acted:
		c.stats.Rebalances++
		c.stats.LastOutcome = out
		c.stats.LastError = ""
	default:
		c.stats.Declined++
		c.stats.LastOutcome = out
		c.stats.LastError = ""
	}
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
