// Package loadgen replays a workload against the retrieval path under
// concurrent load — the traffic side of the ROADMAP's production-scale
// north star. The paper evaluates the cache one query at a time; serving
// systems (RAGCache, Cache-Craft) instead drive concurrent request
// streams, because contention and tail latency, not mean lookup cost,
// dominate at scale. The driver supports:
//
//   - Closed loop: K workers issue queries back-to-back, measuring the
//     maximum throughput the target sustains at that concurrency.
//   - Open loop: queries arrive on a Poisson schedule at a target QPS
//     regardless of completions, measuring latency under offered load.
//     Latency is taken from each query's *scheduled* arrival, so queueing
//     delay is included and coordinated omission is avoided.
//
// Arrival schedules are derived from an explicit seed and query-to-worker
// assignment is static round-robin (a pure function of query index and
// worker count), so a fixed seed replays the exact same experiment.
package loadgen

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"proximity/internal/core"
	"proximity/internal/server"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/workload"
)

// Target is anything that can serve one workload query. Implementations
// must be safe for concurrent use.
type Target interface {
	// Do issues the query, reporting whether the cache answered it.
	Do(q workload.Query) (hit bool, err error)
}

// RetrieverTarget drives a core.CachedRetriever in-process.
type RetrieverTarget struct {
	r *core.CachedRetriever
}

// NewRetrieverTarget wraps a retriever as a load-generation target.
func NewRetrieverTarget(r *core.CachedRetriever) (*RetrieverTarget, error) {
	if r == nil {
		return nil, errors.New("loadgen: retriever is required")
	}
	return &RetrieverTarget{r: r}, nil
}

// Do implements Target.
func (t *RetrieverTarget) Do(q workload.Query) (bool, error) {
	res, err := t.r.Retrieve(q.Embedding)
	return res.Hit, err
}

// HTTPTarget drives the retrieval middleware over HTTP, exercising the
// full deployment path of Fig. 4 (network, JSON codec, handler). All
// transport concerns — including draining response bodies on error paths
// so keep-alive connections are reused rather than churned — live in
// server.Client.
type HTTPTarget struct {
	client *server.Client
}

// NewHTTPTarget targets a running middleware at base
// (e.g. "http://127.0.0.1:8080").
func NewHTTPTarget(base string) *HTTPTarget {
	return &HTTPTarget{client: server.NewClient(base)}
}

// Do implements Target, posting the pre-computed embedding.
func (t *HTTPTarget) Do(q workload.Query) (bool, error) {
	resp, err := t.client.Retrieve(q.Embedding)
	return resp.Hit, err
}

// Mode selects the traffic discipline.
type Mode int

const (
	// ClosedLoop runs K workers back-to-back (throughput probe).
	ClosedLoop Mode = iota + 1
	// OpenLoop paces arrivals at a target QPS with Poisson
	// inter-arrival times (latency-under-load probe).
	OpenLoop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ClosedLoop:
		return "closed"
	case OpenLoop:
		return "open"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode converts a string into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "closed":
		return ClosedLoop, nil
	case "open":
		return OpenLoop, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown mode %q", s)
	}
}

// Options configures a run.
type Options struct {
	// Mode is the traffic discipline. Defaults to ClosedLoop.
	Mode Mode
	// Workers is the concurrency: the closed-loop population size, or
	// the open-loop executor pool. Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// QPS is the open-loop offered load. Required for OpenLoop,
	// ignored for ClosedLoop.
	QPS float64
	// Seed drives the Poisson arrival draw.
	Seed uint64
	// HistogramBuckets sizes the latency histogram. Defaults to 32.
	HistogramBuckets int
	// Telemetry, when non-nil, is the hub the target's retrieval path
	// observes stages into; Run snapshots its per-stage histograms before
	// and after the replay and reports the delta as the stage_breakdown
	// block, attributing end-to-end latency to cache lookup, batching,
	// database search, and node RPC time.
	Telemetry *telemetry.Telemetry
}

func (o *Options) fillDefaults() {
	if o.Mode == 0 {
		o.Mode = ClosedLoop
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.HistogramBuckets <= 0 {
		o.HistogramBuckets = 32
	}
}

func (o Options) validate() error {
	if o.Mode != ClosedLoop && o.Mode != OpenLoop {
		return fmt.Errorf("loadgen: unknown mode %d", int(o.Mode))
	}
	if o.Mode == OpenLoop && o.QPS <= 0 {
		return fmt.Errorf("loadgen: open loop requires a positive QPS, got %v", o.QPS)
	}
	return nil
}

// Schedule returns the open-loop arrival offsets for n queries at the
// target QPS: the cumulative sum of exponentially-distributed
// inter-arrival gaps with mean 1/qps (a Poisson process). The draw is a
// pure function of the seed, so a fixed seed fixes the whole schedule.
func Schedule(n int, qps float64, seed uint64) []time.Duration {
	rng := vec.NewRand(seed)
	offsets := make([]time.Duration, n)
	var t float64 // seconds
	for i := range offsets {
		t += rng.ExpFloat64() / qps
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	return offsets
}

// Assignment returns the worker index that handles each query: static
// round-robin, so the query-to-worker mapping is a pure function of the
// query index and worker count (deterministic replay).
func Assignment(n, workers int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % workers
	}
	return out
}

// Run replays the workload against the target and reports throughput and
// latency. The workload is issued exactly once, in index order per
// worker.
func Run(target Target, w workload.Workload, opts Options) (*Report, error) {
	if target == nil {
		return nil, errors.New("loadgen: target is required")
	}
	if w.Len() == 0 {
		return nil, errors.New("loadgen: empty workload")
	}
	opts.fillDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := w.Len()
	workers := opts.Workers
	if workers > n {
		workers = n
	}

	var offsets []time.Duration
	if opts.Mode == OpenLoop {
		offsets = Schedule(n, opts.QPS, opts.Seed)
	}
	assign := Assignment(n, workers)
	stagesBefore := opts.Telemetry.StageSnapshot()

	type workerResult struct {
		latencies []time.Duration // from the intended issue time
		services  []time.Duration // from the actual issue time
		hits      int
		errs      int
		firstErr  error
	}
	results := make([]workerResult, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := &results[g]
			for i := range w.Queries {
				if assign[i] != g {
					continue
				}
				// issueAt is the INTENDED issue time: the scheduled
				// Poisson arrival in open loop, the actual issue in
				// closed loop (a closed loop has no schedule to fall
				// behind). A worker running late must NOT re-stamp it —
				// measuring a backlogged query from when the worker got
				// around to it would hide exactly the queueing delay an
				// offered-load probe exists to expose (coordinated
				// omission). Both views are recorded: response time from
				// issueAt, service time from the actual issue.
				issueAt := start
				var actual time.Time // open loop only: the post-sleep issue instant
				if offsets != nil {
					issueAt = start.Add(offsets[i])
					if d := time.Until(issueAt); d > 0 {
						time.Sleep(d)
					}
					actual = time.Now()
				} else {
					issueAt = time.Now()
				}
				hit, err := target.Do(w.Queries[i])
				if err != nil {
					res.errs++
					if res.firstErr == nil {
						res.firstErr = fmt.Errorf("query %d: %w", i, err)
					}
					continue
				}
				end := time.Now()
				res.latencies = append(res.latencies, end.Sub(issueAt))
				if offsets != nil {
					// Closed loop has no schedule to fall behind, so
					// the service view would duplicate the response
					// samples; summarize aliases them instead.
					res.services = append(res.services, end.Sub(actual))
				}
				if hit {
					res.hits++
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Mode:      opts.Mode,
		Workers:   workers,
		Workload:  w.Name,
		Queries:   n,
		Elapsed:   elapsed,
		TargetQPS: opts.QPS,
	}
	var all, svc []time.Duration
	var firstErr error
	for _, res := range results {
		all = append(all, res.latencies...)
		svc = append(svc, res.services...)
		rep.Hits += res.hits
		rep.Errors += res.errs
		if firstErr == nil {
			firstErr = res.firstErr
		}
	}
	rep.FirstError = firstErr
	rep.summarize(all, svc, opts.HistogramBuckets)
	if opts.Telemetry != nil {
		rep.Stages = stageBreakdown(opts.Telemetry.StageSnapshot().Sub(stagesBefore))
	}
	return rep, nil
}

// stageBreakdown summarizes a run's stage-histogram delta, dropping
// stages with no observations.
func stageBreakdown(delta telemetry.StageSnapshot) []StageLatency {
	var out []StageLatency
	for _, stage := range telemetry.Stages() {
		snap := delta[stage]
		if snap.N == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage: stage.String(),
			Count: snap.N,
			Total: time.Duration(snap.SumNs),
			Mean:  snap.Mean(),
			P50:   snap.Quantile(0.50),
			P95:   snap.Quantile(0.95),
			P99:   snap.Quantile(0.99),
		})
	}
	return out
}
