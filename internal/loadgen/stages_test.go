package loadgen

import (
	"strings"
	"testing"

	"proximity/internal/core"
	"proximity/internal/telemetry"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

// newTelemetryRetriever is newTestRetriever with a telemetry hub wired.
func newTelemetryRetriever(t *testing.T) (*core.CachedRetriever, *telemetry.Telemetry) {
	t.Helper()
	rng := vec.NewRand(99)
	db, err := vectordb.NewFlatIndex(testDim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := db.Add(vec.Scale(vec.RandomUnit(rng, testDim), 10)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewFlat(testDim, core.Options{Capacity: 64, Tolerance: 0.5, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.Options{})
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return retr, tel
}

// TestRunStageBreakdown: a run against a telemetry-wired retriever
// reports the per-stage latency delta of exactly that run — every query
// observes a cache lookup, only the unique ones a database search.
func TestRunStageBreakdown(t *testing.T) {
	retr, tel := newTelemetryRetriever(t)
	target, err := NewRetrieverTarget(retr)
	if err != nil {
		t.Fatal(err)
	}
	const n, unique = 40, 8
	w := syntheticWorkload(n, unique, 7)

	rep, err := Run(target, w, Options{Workers: 1, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors: %v", rep.Errors, rep.FirstError)
	}
	byStage := make(map[string]StageLatency, len(rep.Stages))
	for _, s := range rep.Stages {
		byStage[s.Stage] = s
	}
	if got := byStage["cache_lookup"].Count; got != n {
		t.Errorf("cache_lookup count = %d, want %d", got, n)
	}
	if got := byStage["db_search"].Count; got != unique {
		t.Errorf("db_search count = %d, want %d", got, unique)
	}
	for _, s := range rep.Stages {
		if s.Mean <= 0 || s.P95 < s.P50 || s.Total <= 0 {
			t.Errorf("implausible stage summary %+v", s)
		}
	}
	if out := rep.Render(); !strings.Contains(out, "stage breakdown") ||
		!strings.Contains(out, "cache_lookup") {
		t.Errorf("rendered report missing stage breakdown:\n%s", out)
	}

	// A second run over the same hub must report only its own delta.
	rep2, err := Run(target, w, Options{Workers: 1, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep2.Stages {
		if s.Stage == "cache_lookup" && s.Count != n {
			t.Errorf("second run cache_lookup count = %d, want %d (delta, not cumulative)", s.Count, n)
		}
		if s.Stage == "db_search" {
			t.Errorf("warm second run should have no db_search, got %+v", s)
		}
	}
}

// TestRunWithoutTelemetryHasNoStages pins the default: no hub, no block.
func TestRunWithoutTelemetryHasNoStages(t *testing.T) {
	target, err := NewRetrieverTarget(newTestRetriever(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(target, syntheticWorkload(10, 5, 7), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stages != nil {
		t.Errorf("stages without telemetry = %+v, want none", rep.Stages)
	}
	if strings.Contains(rep.Render(), "stage breakdown") {
		t.Error("render shows a stage breakdown without telemetry")
	}
}
