package loadgen

import (
	"fmt"
	"strings"
	"time"

	"proximity/internal/report"
	"proximity/internal/stats"
)

// Report summarizes one load-generation run: throughput, cache
// effectiveness, and the latency distribution (p50/p95/p99/max plus a
// fixed-bucket histogram).
type Report struct {
	Mode     Mode
	Workers  int
	Workload string
	Queries  int
	Hits     int
	Errors   int
	Elapsed  time.Duration
	// TargetQPS is the open-loop offered load (0 for closed loop);
	// AchievedQPS is completed queries over wall-clock time.
	TargetQPS   float64
	AchievedQPS float64

	// Response-time summary over successful queries, measured from each
	// query's INTENDED issue time (the scheduled Poisson arrival in
	// open loop), so backlog queueing delay counts — the coordinated-
	// omission-free view an offered-load probe must report.
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration

	// Service-time summary over the same queries, measured from the
	// instant the worker actually issued each request. Under backlog
	// the response percentiles above grow while these stay flat; the
	// gap IS the queueing a service-only view hides. In closed loop the
	// two views coincide (no schedule to fall behind).
	SvcMean time.Duration
	SvcP50  time.Duration
	SvcP95  time.Duration
	SvcP99  time.Duration
	SvcMax  time.Duration

	// Histogram of latencies over [HistLo, HistHi), linear buckets.
	HistLo     time.Duration
	HistHi     time.Duration
	HistCounts []int64
	// Stages attributes time inside the target to retrieval stages
	// (cache lookup, batch queue dwell, database search, node RPC, ...)
	// over exactly this run: the delta of the telemetry hub's per-stage
	// histograms across the replay. Empty without Options.Telemetry.
	Stages []StageLatency
	// FirstError carries the first failure observed (nil if none);
	// Errors counts all of them.
	FirstError error
}

// StageLatency is one stage's latency summary within a run. Counts need
// not sum to the query count: a cache hit observes only the lookup
// stage, and one batched flush serves many queries.
type StageLatency struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// HitRate returns Hits over successful queries, or 0 with none.
func (r *Report) HitRate() float64 {
	if ok := r.Queries - r.Errors; ok > 0 {
		return float64(r.Hits) / float64(ok)
	}
	return 0
}

// summarize fills the latency summaries and histogram from raw samples.
func (r *Report) summarize(samples, services []time.Duration, buckets int) {
	if r.Elapsed > 0 {
		r.AchievedQPS = float64(len(samples)) / r.Elapsed.Seconds()
	}
	if len(samples) == 0 {
		return
	}
	var rec stats.LatencyRecorder
	for _, s := range samples {
		rec.Record(s)
	}
	r.Mean = rec.Mean()
	r.P50 = rec.Percentile(50)
	r.P95 = rec.Percentile(95)
	r.P99 = rec.Percentile(99)
	r.Max = rec.Max()

	if len(services) == 0 {
		// Closed loop records no separate service samples: with no
		// schedule to fall behind, the views coincide by definition.
		r.SvcMean, r.SvcP50, r.SvcP95, r.SvcP99, r.SvcMax = r.Mean, r.P50, r.P95, r.P99, r.Max
	} else {
		var svc stats.LatencyRecorder
		for _, s := range services {
			svc.Record(s)
		}
		r.SvcMean = svc.Mean()
		r.SvcP50 = svc.Percentile(50)
		r.SvcP95 = svc.Percentile(95)
		r.SvcP99 = svc.Percentile(99)
		r.SvcMax = svc.Max()
	}

	r.HistLo, r.HistHi = 0, r.Max+1
	h, err := stats.NewHistogram(float64(r.HistLo), float64(r.HistHi), buckets)
	if err != nil {
		// Bucket count and bounds are validated by construction;
		// failure here is unreachable.
		panic(fmt.Sprintf("loadgen: histogram construction failed: %v", err))
	}
	for _, s := range samples {
		h.Add(float64(s))
	}
	r.HistCounts = h.Buckets()
}

// Render formats the report: a summary table, the latency quantiles, and
// an ASCII histogram of the latency distribution.
func (r *Report) Render() string {
	title := fmt.Sprintf("Load test (%s loop, %d workers", r.Mode, r.Workers)
	if r.Mode == OpenLoop {
		title += fmt.Sprintf(", target %.0f qps", r.TargetQPS)
	}
	title += ")"
	t := report.NewTable(title,
		"workload", "queries", "errors", "hitRate%", "elapsed", "qps")
	t.AddRow(
		r.Workload,
		fmt.Sprintf("%d", r.Queries),
		fmt.Sprintf("%d", r.Errors),
		report.Percent(r.HitRate()),
		r.Elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1f", r.AchievedQPS),
	)
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "latency mean=%v p50=%v p95=%v p99=%v max=%v\n",
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond),
		r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Max.Round(time.Microsecond))
	if r.Mode == OpenLoop {
		// The response/service gap is the backlog queueing delay; a
		// service line close to the response line means the target kept
		// up with the offered load.
		fmt.Fprintf(&b, "service mean=%v p50=%v p95=%v p99=%v max=%v\n",
			r.SvcMean.Round(time.Microsecond), r.SvcP50.Round(time.Microsecond),
			r.SvcP95.Round(time.Microsecond), r.SvcP99.Round(time.Microsecond),
			r.SvcMax.Round(time.Microsecond))
	}
	b.WriteString(r.renderHistogram())
	if len(r.Stages) > 0 {
		st := report.NewTable("stage breakdown",
			"stage", "count", "total", "mean", "p50", "p95", "p99")
		for _, s := range r.Stages {
			st.AddRow(
				s.Stage,
				fmt.Sprintf("%d", s.Count),
				s.Total.Round(time.Microsecond).String(),
				s.Mean.Round(time.Microsecond).String(),
				s.P50.Round(time.Microsecond).String(),
				s.P95.Round(time.Microsecond).String(),
				s.P99.Round(time.Microsecond).String(),
			)
		}
		b.WriteString(st.String())
	}
	if r.FirstError != nil {
		fmt.Fprintf(&b, "first error: %v\n", r.FirstError)
	}
	return b.String()
}

// renderHistogram draws one bar per non-empty bucket, scaled to the
// largest count.
func (r *Report) renderHistogram() string {
	if len(r.HistCounts) == 0 {
		return ""
	}
	var peak int64
	for _, c := range r.HistCounts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return ""
	}
	const width = 40
	var b strings.Builder
	step := (r.HistHi - r.HistLo) / time.Duration(len(r.HistCounts))
	for i, c := range r.HistCounts {
		if c == 0 {
			continue
		}
		lo := r.HistLo + time.Duration(i)*step
		bar := strings.Repeat("#", int(max(1, c*width/peak)))
		fmt.Fprintf(&b, "%12v %6d %s\n", lo.Round(time.Microsecond), c, bar)
	}
	return b.String()
}
