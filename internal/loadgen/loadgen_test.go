package loadgen

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"proximity/internal/core"
	"proximity/internal/server"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

const testDim = 16

// syntheticWorkload builds n queries over `unique` distinct embeddings,
// cycling so repeats can hit a cache.
func syntheticWorkload(n, unique int, seed uint64) workload.Workload {
	rng := vec.NewRand(seed)
	base := make([]vec.Vector, unique)
	for i := range base {
		base[i] = vec.Scale(vec.RandomUnit(rng, testDim), 10)
	}
	queries := make([]workload.Query, n)
	for i := range queries {
		q := i % unique
		queries[i] = workload.Query{
			Text:       fmt.Sprintf("q%d", q),
			Embedding:  base[q],
			Question:   q,
			Occurrence: i / unique,
		}
	}
	return workload.Workload{Name: "synthetic", Queries: queries}
}

// newTestRetriever wires a flat cache over a small flat index.
func newTestRetriever(t *testing.T) *core.CachedRetriever {
	t.Helper()
	rng := vec.NewRand(99)
	db, err := vectordb.NewFlatIndex(testDim, vec.L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := db.Add(vec.Scale(vec.RandomUnit(rng, testDim), 10)); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := core.NewFlat(testDim, core.Options{Capacity: 64, Tolerance: 0.5, Policy: core.LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return retr
}

// countingTarget records every query index it serves.
type countingTarget struct {
	mu     sync.Mutex
	served map[int]int
	failOn func(q workload.Query) bool
}

func newCountingTarget() *countingTarget {
	return &countingTarget{served: make(map[int]int)}
}

func (t *countingTarget) Do(q workload.Query) (bool, error) {
	if t.failOn != nil && t.failOn(q) {
		return false, errors.New("induced failure")
	}
	t.mu.Lock()
	t.served[q.Occurrence*1000+q.Question]++
	t.mu.Unlock()
	return q.Occurrence > 0, nil
}

func TestScheduleDeterminism(t *testing.T) {
	a := Schedule(200, 500, 42)
	b := Schedule(200, 500, 42)
	if len(a) != 200 {
		t.Fatalf("schedule length %d, want 200", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("offsets not monotonic at %d", i)
		}
	}
	c := Schedule(200, 500, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical schedule")
	}
	// Mean arrival spacing tracks 1/qps (loose 3x bound: 200 draws).
	mean := a[len(a)-1] / time.Duration(len(a))
	want := time.Second / 500
	if mean < want/3 || mean > want*3 {
		t.Errorf("mean spacing %v far from target %v", mean, want)
	}
}

func TestAssignmentDeterminism(t *testing.T) {
	a := Assignment(10, 4)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Assignment = %v, want %v", a, want)
		}
	}
	b := Assignment(10, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("assignment is not stable")
		}
	}
}

func TestRunValidation(t *testing.T) {
	w := syntheticWorkload(10, 5, 1)
	if _, err := Run(nil, w, Options{}); err == nil {
		t.Error("nil target should error")
	}
	if _, err := Run(newCountingTarget(), workload.Workload{}, Options{}); err == nil {
		t.Error("empty workload should error")
	}
	if _, err := Run(newCountingTarget(), w, Options{Mode: OpenLoop}); err == nil {
		t.Error("open loop without QPS should error")
	}
	if _, err := Run(newCountingTarget(), w, Options{Mode: Mode(9)}); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ClosedLoop, OpenLoop} {
		parsed, err := ParseMode(m.String())
		if err != nil {
			t.Fatal(err)
		}
		if parsed != m {
			t.Errorf("round-trip %v != %v", parsed, m)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("unknown mode should error")
	}
}

// TestClosedLoopEveryQueryOnce: the driver issues each workload query
// exactly once across workers.
func TestClosedLoopEveryQueryOnce(t *testing.T) {
	w := syntheticWorkload(120, 30, 2)
	target := newCountingTarget()
	rep, err := Run(target, w, Options{Mode: ClosedLoop, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 120 {
		t.Errorf("Queries = %d, want 120", rep.Queries)
	}
	if rep.Errors != 0 {
		t.Errorf("Errors = %d, want 0", rep.Errors)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	total := 0
	for key, n := range target.served {
		if n != 1 {
			t.Errorf("query key %d served %d times", key, n)
		}
		total += n
	}
	if total != 120 {
		t.Errorf("served %d queries, want 120", total)
	}
	// Occurrence > 0 is a "hit" in the fake: 120 - 30 first occurrences.
	if rep.Hits != 90 {
		t.Errorf("Hits = %d, want 90", rep.Hits)
	}
	if hr := rep.HitRate(); hr < 0.74 || hr > 0.76 {
		t.Errorf("HitRate = %v, want 0.75", hr)
	}
}

// TestClosedLoopAgainstRetriever drives the real Algorithm 1 path.
func TestClosedLoopAgainstRetriever(t *testing.T) {
	retr := newTestRetriever(t)
	target, err := NewRetrieverTarget(retr)
	if err != nil {
		t.Fatal(err)
	}
	w := syntheticWorkload(200, 40, 3)
	rep, err := Run(target, w, Options{Mode: ClosedLoop, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d: %v", rep.Errors, rep.FirstError)
	}
	// 40 unique embeddings fit a 64-entry cache: all repeats hit.
	if rep.Hits != 160 {
		t.Errorf("Hits = %d, want 160", rep.Hits)
	}
	if rep.AchievedQPS <= 0 {
		t.Error("achieved QPS should be positive")
	}
	assertSummary(t, rep)
}

// TestOpenLoop paces a fast schedule and checks the report shape.
func TestOpenLoop(t *testing.T) {
	retr := newTestRetriever(t)
	target, err := NewRetrieverTarget(retr)
	if err != nil {
		t.Fatal(err)
	}
	w := syntheticWorkload(150, 30, 4)
	rep, err := Run(target, w, Options{
		Mode: OpenLoop, QPS: 20000, Workers: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != OpenLoop {
		t.Errorf("Mode = %v, want open", rep.Mode)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d: %v", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 150 {
		t.Errorf("Queries = %d, want 150", rep.Queries)
	}
	if rep.TargetQPS != 20000 {
		t.Errorf("TargetQPS = %v, want 20000", rep.TargetQPS)
	}
	// The schedule's last arrival bounds the run from below.
	if rep.Elapsed <= 0 {
		t.Error("Elapsed should be positive")
	}
	assertSummary(t, rep)
}

func TestErrorsAreCounted(t *testing.T) {
	w := syntheticWorkload(60, 20, 5)
	target := newCountingTarget()
	target.failOn = func(q workload.Query) bool { return q.Question%5 == 0 }
	rep, err := Run(target, w, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 12 { // 4 of 20 questions fail, 3 occurrences each
		t.Errorf("Errors = %d, want 12", rep.Errors)
	}
	if rep.FirstError == nil {
		t.Error("FirstError should be set")
	}
	var histTotal int64
	for _, c := range rep.HistCounts {
		histTotal += c
	}
	if histTotal != int64(rep.Queries-rep.Errors) {
		t.Errorf("histogram holds %d samples, want %d successes", histTotal, rep.Queries-rep.Errors)
	}
}

// TestHTTPTarget drives the middleware end-to-end over loopback HTTP.
func TestHTTPTarget(t *testing.T) {
	retr := newTestRetriever(t)
	srv, err := server.New(server.Config{Retriever: retr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w := syntheticWorkload(80, 20, 6)
	rep, err := Run(NewHTTPTarget(ts.URL), w, Options{Mode: ClosedLoop, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("Errors = %d: %v", rep.Errors, rep.FirstError)
	}
	if rep.Hits != 60 {
		t.Errorf("Hits = %d, want 60", rep.Hits)
	}
	assertSummary(t, rep)
}

func TestRender(t *testing.T) {
	retr := newTestRetriever(t)
	target, err := NewRetrieverTarget(retr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(target, syntheticWorkload(50, 10, 8), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"Load test", "closed loop", "hitRate%", "latency", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// assertSummary checks the latency summary invariants.
func assertSummary(t *testing.T, rep *Report) {
	t.Helper()
	if rep.P50 > rep.P95 || rep.P95 > rep.P99 || rep.P99 > rep.Max {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v max=%v",
			rep.P50, rep.P95, rep.P99, rep.Max)
	}
	if rep.Max <= 0 {
		t.Error("max latency should be positive")
	}
	var histTotal int64
	for _, c := range rep.HistCounts {
		histTotal += c
	}
	if histTotal != int64(rep.Queries-rep.Errors) {
		t.Errorf("histogram holds %d samples, want %d", histTotal, rep.Queries-rep.Errors)
	}
}
