package loadgen

import (
	"strings"
	"testing"
	"time"

	"proximity/internal/workload"
)

// slowTarget serves each query after a fixed service time.
type slowTarget struct{ d time.Duration }

func (t slowTarget) Do(workload.Query) (bool, error) {
	time.Sleep(t.d)
	return false, nil
}

func slowWorkload(n int) workload.Workload {
	w := workload.Workload{Name: "slow"}
	for i := 0; i < n; i++ {
		w.Queries = append(w.Queries, workload.Query{Embedding: []float32{float32(i)}})
	}
	return w
}

// TestOpenLoopReportsQueueingDelay is the coordinated-omission
// regression test: offer load well beyond the target's capacity and the
// RESPONSE percentiles (measured from each query's intended Poisson
// arrival) must show the growing backlog, while the SERVICE percentiles
// (measured from the actual issue) stay near the per-query service time.
// A driver that re-stamped the issue time per query would report the
// service view as the response view and hide the overload entirely.
func TestOpenLoopReportsQueueingDelay(t *testing.T) {
	const service = 2 * time.Millisecond
	// 2 workers at ~500/s capacity vs 4000 qps offered: the backlog
	// grows by design.
	rep, err := Run(slowTarget{service}, slowWorkload(60), Options{
		Mode:    OpenLoop,
		Workers: 2,
		QPS:     4000,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.SvcP50 < service || rep.SvcP50 > 20*service {
		t.Errorf("service p50 = %v, want near the %v service time", rep.SvcP50, service)
	}
	if rep.P95 < 2*rep.SvcP95 {
		t.Errorf("response p95 %v does not dominate service p95 %v under a growing backlog",
			rep.P95, rep.SvcP95)
	}
	if rep.Max < rep.SvcMax {
		t.Errorf("response max %v below service max %v", rep.Max, rep.SvcMax)
	}
	out := rep.Render()
	if !strings.Contains(out, "service ") {
		t.Errorf("open-loop render missing the service line:\n%s", out)
	}
}

// TestClosedLoopViewsCoincide: with no arrival schedule there is nothing
// to fall behind, so the two views measure the same interval.
func TestClosedLoopViewsCoincide(t *testing.T) {
	const service = time.Millisecond
	rep, err := Run(slowTarget{service}, slowWorkload(20), Options{
		Mode:    ClosedLoop,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := (rep.P50 - rep.SvcP50).Abs(); diff > service/2 {
		t.Errorf("closed-loop p50 views diverge: response %v vs service %v", rep.P50, rep.SvcP50)
	}
	if strings.Contains(rep.Render(), "service ") {
		t.Error("closed-loop render should not print a separate service line")
	}
}
