// Package zipf implements the bounded Zipf distribution used to model query
// skew. Section 2.3 of the paper measures an exponent of s ≈ 0.627 on the
// TripClick search log and the MedRAG-Zipf workload draws queries with
// s = 0.8 (§4.2.2); this package provides both the sampler that generates
// such workloads and the estimator that recovers the exponent from an
// observed frequency distribution (Fig. 2).
package zipf

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"proximity/internal/stats"
)

// Sampler draws ranks in [0, n) with P(rank = r) ∝ 1/(r+1)^s. Unlike
// math/rand's Zipf, the exponent may be ≤ 1, which the paper's measured
// skews require. Sampling is by inverse transform over the precomputed CDF
// (O(log n) per draw).
type Sampler struct {
	rng *rand.Rand
	cdf []float64
}

// NewSampler creates a Zipf sampler over n ranks with exponent s > 0.
func NewSampler(rng *rand.Rand, n int, s float64) (*Sampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: need n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("zipf: need exponent > 0, got %v", s)
	}
	cdf := make([]float64, n)
	var cum float64
	for r := 0; r < n; r++ {
		cum += math.Pow(float64(r+1), -s)
		cdf[r] = cum
	}
	// Normalize so the last entry is exactly 1.
	for r := range cdf {
		cdf[r] /= cum
	}
	cdf[n-1] = 1
	return &Sampler{rng: rng, cdf: cdf}, nil
}

// N returns the number of ranks.
func (s *Sampler) N() int { return len(s.cdf) }

// Next draws one rank in [0, N()).
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	return sort.SearchFloat64s(s.cdf, u)
}

// Probability returns P(rank = r).
func (s *Sampler) Probability(r int) float64 {
	if r < 0 || r >= len(s.cdf) {
		return 0
	}
	if r == 0 {
		return s.cdf[0]
	}
	return s.cdf[r] - s.cdf[r-1]
}

// RankFrequency converts a multiset of item identifiers into the
// rank-frequency view of Fig. 2: frequencies sorted descending, index =
// rank (0-based).
func RankFrequency[T comparable](items []T) []int {
	counts := make(map[T]int, len(items))
	for _, it := range items {
		counts[it]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	return freqs
}

// FitResult is an estimated power law fit frequency ≈ C · rank^(-s).
type FitResult struct {
	Exponent  float64 // the fitted s (reported positive)
	Intercept float64 // log-space intercept, i.e. log(C)
	R2        float64 // goodness of fit in log-log space
}

// Fit estimates the Zipf exponent from a descending rank-frequency curve by
// least squares on (log rank, log frequency), the method the paper uses for
// the TripClick analysis. Ranks with zero frequency are skipped.
func Fit(freqs []int) (FitResult, error) {
	var xs, ys []float64
	for r, f := range freqs {
		if f <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r+1)))
		ys = append(ys, math.Log(float64(f)))
	}
	if len(xs) < 2 {
		return FitResult{}, fmt.Errorf("zipf: need at least 2 non-empty ranks, got %d", len(xs))
	}
	slope, intercept, err := stats.LinearFit(xs, ys)
	if err != nil {
		return FitResult{}, fmt.Errorf("zipf fit: %w", err)
	}
	return FitResult{
		Exponent:  -slope,
		Intercept: intercept,
		R2:        stats.RSquared(xs, ys, slope, intercept),
	}, nil
}
