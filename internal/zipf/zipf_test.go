package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"proximity/internal/vec"
)

func TestNewSamplerValidation(t *testing.T) {
	rng := vec.NewRand(1)
	if _, err := NewSampler(rng, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewSampler(rng, -1, 1); err == nil {
		t.Error("n<0 should error")
	}
	if _, err := NewSampler(rng, 10, 0); err == nil {
		t.Error("s=0 should error")
	}
	if _, err := NewSampler(rng, 10, -0.5); err == nil {
		t.Error("s<0 should error")
	}
}

func TestSamplerBounds(t *testing.T) {
	rng := vec.NewRand(2)
	s, err := NewSampler(rng, 50, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		r := s.Next()
		if r < 0 || r >= 50 {
			t.Fatalf("rank %d out of [0, 50)", r)
		}
	}
}

func TestSamplerSingleRank(t *testing.T) {
	s, err := NewSampler(vec.NewRand(3), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if s.Next() != 0 {
			t.Fatal("single-rank sampler must always return 0")
		}
	}
}

func TestSamplerProbability(t *testing.T) {
	s, err := NewSampler(vec.NewRand(4), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unnormalized weights 1, 1/2, 1/3 → normalizer 11/6.
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	var total float64
	for r, w := range want {
		got := s.Probability(r)
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", r, got, w)
		}
		total += got
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", total)
	}
	if s.Probability(-1) != 0 || s.Probability(3) != 0 {
		t.Error("out-of-range probability should be 0")
	}
}

func TestSamplerSkew(t *testing.T) {
	// With s=0.8 over 100 ranks, rank 0 must dominate rank 50 empirically.
	s, err := NewSampler(vec.NewRand(5), 100, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	const draws = 200_000
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	if counts[0] <= counts[50]*5 {
		t.Errorf("expected strong skew: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
	// Empirical frequency of rank 0 should be close to its probability.
	emp := float64(counts[0]) / draws
	if math.Abs(emp-s.Probability(0)) > 0.01 {
		t.Errorf("empirical P(0) = %v, want ≈ %v", emp, s.Probability(0))
	}
}

func TestRankFrequency(t *testing.T) {
	got := RankFrequency([]string{"a", "b", "a", "c", "a", "b"})
	want := []int{3, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("RankFrequency = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankFrequency = %v, want %v", got, want)
		}
	}
	if rf := RankFrequency([]int(nil)); len(rf) != 0 {
		t.Errorf("empty input should give empty output, got %v", rf)
	}
}

func TestFitRecoversExponent(t *testing.T) {
	// Generate an exact power law and check the estimator recovers it.
	for _, s := range []float64{0.627, 0.8, 1.5} {
		freqs := make([]int, 200)
		for r := range freqs {
			freqs[r] = int(1e6 * math.Pow(float64(r+1), -s))
		}
		fit, err := Fit(freqs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Exponent-s) > 0.02 {
			t.Errorf("s=%v: fitted %v", s, fit.Exponent)
		}
		if fit.R2 < 0.999 {
			t.Errorf("s=%v: R² = %v, want ≈ 1", s, fit.R2)
		}
	}
}

func TestFitOnSampledData(t *testing.T) {
	// End-to-end: sample from Zipf(0.8), then fit the empirical curve.
	// Log-log regression over a sampled tail is biased, so allow slack; the
	// point is to recover the right regime, as Fig. 2 does for TripClick.
	s, err := NewSampler(vec.NewRand(6), 500, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	draws := make([]int, 100_000)
	for i := range draws {
		draws[i] = s.Next()
	}
	fit, err := Fit(RankFrequency(draws))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exponent < 0.5 || fit.Exponent > 1.2 {
		t.Errorf("fitted exponent %v outside plausible window for s=0.8", fit.Exponent)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Fit([]int{5}); err == nil {
		t.Error("single rank should error")
	}
	if _, err := Fit([]int{0, 0, 0}); err == nil {
		t.Error("all-zero input should error")
	}
}

// Property: the sampler is deterministic for a fixed seed and its CDF is
// monotone (Next never returns out-of-range even for extreme u).
func TestSamplerDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%97)
		a, err := NewSampler(vec.NewRand(seed), n, 0.7)
		if err != nil {
			return false
		}
		b, err := NewSampler(vec.NewRand(seed), n, 0.7)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
