package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRecall(t *testing.T) {
	tests := []struct {
		name       string
		got, truth []int
		want       float64
	}{
		{name: "perfect", got: []int{1, 2, 3}, truth: []int{1, 2, 3}, want: 1},
		{name: "order irrelevant", got: []int{3, 1, 2}, truth: []int{1, 2, 3}, want: 1},
		{name: "partial", got: []int{1, 9, 8}, truth: []int{1, 2, 3}, want: 1.0 / 3},
		{name: "disjoint", got: []int{7, 8}, truth: []int{1, 2}, want: 0},
		{name: "empty truth", got: []int{1}, truth: nil, want: 1},
		{name: "empty got", got: nil, truth: []int{1, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Recall(tt.got, tt.truth); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Recall = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRunCounters(t *testing.T) {
	r := &Run{Name: "test"}
	if r.HitRate() != 0 || r.Accuracy() != 0 || r.MeanRecall() != 0 {
		t.Error("zero-value run should report zeros")
	}
	r.RecordRetrieval(true, time.Microsecond, time.Microsecond)
	r.RecordRetrieval(false, 2*time.Microsecond, 100*time.Millisecond)
	r.RecordRetrieval(false, 3*time.Microsecond, 100*time.Millisecond)
	if r.Queries() != 3 || r.Hits() != 1 || r.DBCalls() != 2 {
		t.Errorf("counts: queries=%d hits=%d db=%d", r.Queries(), r.Hits(), r.DBCalls())
	}
	if got := r.HitRate(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("HitRate = %v", got)
	}
	if got := r.MeanCacheLookup(); got != 2*time.Microsecond {
		t.Errorf("MeanCacheLookup = %v", got)
	}
	wantMean := (time.Microsecond + 200*time.Millisecond) / 3
	if got := r.MeanRetrieval(); got != wantMean {
		t.Errorf("MeanRetrieval = %v, want %v", got, wantMean)
	}
	if r.RetrievalP99() < 99*time.Millisecond {
		t.Errorf("P99 = %v", r.RetrievalP99())
	}

	r.RecordAnswer(true)
	r.RecordAnswer(true)
	r.RecordAnswer(false)
	if got := r.Accuracy(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}

	r.RecordRecall(1)
	r.RecordRecall(0.5)
	if got := r.MeanRecall(); got != 0.75 {
		t.Errorf("MeanRecall = %v", got)
	}

	s := r.String()
	for _, part := range []string{"test", "queries=3"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q missing %q", s, part)
		}
	}
}

func TestAggregate(t *testing.T) {
	var agg Aggregate
	if agg.Runs() != 0 {
		t.Error("empty aggregate should have 0 runs")
	}
	for seed := 0; seed < 3; seed++ {
		r := &Run{}
		r.RecordRetrieval(true, time.Microsecond, time.Microsecond)
		r.RecordRetrieval(false, time.Microsecond, time.Millisecond)
		r.RecordAnswer(seed != 0) // accuracies 0, 1, 1
		r.RecordRecall(1)
		agg.Add(r)
	}
	if agg.Runs() != 3 {
		t.Errorf("Runs = %d", agg.Runs())
	}
	if got := agg.HitRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HitRate = %v", got)
	}
	if got := agg.Accuracy(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := agg.Recall(); got != 1 {
		t.Errorf("Recall = %v", got)
	}
	if got := agg.DBCalls(); got != 1 {
		t.Errorf("DBCalls = %v", got)
	}
	if agg.AccuracyStddev() == 0 {
		t.Error("across-seed accuracy variance expected")
	}
	if agg.MeanRetrieval() <= agg.MeanCacheLookup() {
		t.Error("retrieval latency should exceed cache-lookup latency here")
	}
}
