// Package metrics implements the paper's evaluation metrics (§4.2.4):
// test accuracy, cache hit rate, retrieval latency, and database k-recall
// — plus the across-seed aggregation used to average the five runs the
// paper reports.
package metrics

import (
	"fmt"
	"time"

	"proximity/internal/stats"
)

// Recall returns the database k-recall of a cache answer: the fraction of
// the documents the database would have returned that the cache actually
// returned (§4.2.4). Both slices are top-k ID lists; an empty ground
// truth yields recall 1 (nothing to recover).
func Recall(got, truth []int) float64 {
	if len(truth) == 0 {
		return 1
	}
	want := make(map[int]struct{}, len(truth))
	for _, id := range truth {
		want[id] = struct{}{}
	}
	found := 0
	for _, id := range got {
		if _, ok := want[id]; ok {
			found++
		}
	}
	return float64(found) / float64(len(truth))
}

// Run accumulates the outcome of one workload execution.
type Run struct {
	// Name labels the configuration (e.g. "flat τ=5 c=100").
	Name string

	queries   int
	hits      int
	dbCalls   int
	answered  int
	correct   int
	recallSum float64
	recallN   int

	cacheTime     stats.LatencyRecorder
	retrievalTime stats.LatencyRecorder
}

// RecordRetrieval folds in one query's retrieval outcome.
func (r *Run) RecordRetrieval(hit bool, cacheTime, totalTime time.Duration) {
	r.queries++
	if hit {
		r.hits++
	} else {
		r.dbCalls++
	}
	r.cacheTime.Record(cacheTime)
	r.retrievalTime.Record(totalTime)
}

// RecordAnswer folds in one query's answer correctness.
func (r *Run) RecordAnswer(correct bool) {
	r.answered++
	if correct {
		r.correct++
	}
}

// RecordRecall folds in one query's database k-recall.
func (r *Run) RecordRecall(recall float64) {
	r.recallSum += recall
	r.recallN++
}

// Queries returns the number of retrievals recorded.
func (r *Run) Queries() int { return r.queries }

// Hits returns the number of cache hits.
func (r *Run) Hits() int { return r.hits }

// DBCalls returns the number of database lookups (misses).
func (r *Run) DBCalls() int { return r.dbCalls }

// HitRate returns hits / queries (0 before any query).
func (r *Run) HitRate() float64 {
	if r.queries == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.queries)
}

// Accuracy returns the fraction of correctly answered questions.
func (r *Run) Accuracy() float64 {
	if r.answered == 0 {
		return 0
	}
	return float64(r.correct) / float64(r.answered)
}

// MeanRecall returns the average database k-recall.
func (r *Run) MeanRecall() float64 {
	if r.recallN == 0 {
		return 0
	}
	return r.recallSum / float64(r.recallN)
}

// MeanRetrieval returns the mean end-to-end retrieval latency (cache +
// database), the Fig. 6c / Fig. 7d quantity.
func (r *Run) MeanRetrieval() time.Duration { return r.retrievalTime.Mean() }

// MeanCacheLookup returns the mean time spent inside the cache, the
// Fig. 10/11 quantity.
func (r *Run) MeanCacheLookup() time.Duration { return r.cacheTime.Mean() }

// RetrievalP99 returns the 99th percentile retrieval latency.
func (r *Run) RetrievalP99() time.Duration { return r.retrievalTime.Percentile(99) }

// String summarizes the run.
func (r *Run) String() string {
	return fmt.Sprintf("%s: queries=%d hit=%.1f%% acc=%.1f%% recall=%.1f%% retr=%v",
		r.Name, r.queries, 100*r.HitRate(), 100*r.Accuracy(), 100*r.MeanRecall(), r.MeanRetrieval())
}

// Aggregate averages a metric across seeded runs, as the paper does over
// five seeds.
type Aggregate struct {
	hitRate   stats.Welford
	accuracy  stats.Welford
	recall    stats.Welford
	retrieval stats.Welford // nanoseconds
	cache     stats.Welford // nanoseconds
	dbCalls   stats.Welford
}

// Add folds one run into the aggregate.
func (a *Aggregate) Add(r *Run) {
	a.hitRate.Add(r.HitRate())
	a.accuracy.Add(r.Accuracy())
	a.recall.Add(r.MeanRecall())
	a.retrieval.Add(float64(r.MeanRetrieval()))
	a.cache.Add(float64(r.MeanCacheLookup()))
	a.dbCalls.Add(float64(r.DBCalls()))
}

// Runs returns how many runs were aggregated.
func (a *Aggregate) Runs() int { return a.hitRate.N() }

// HitRate returns the mean hit rate across runs.
func (a *Aggregate) HitRate() float64 { return a.hitRate.Mean() }

// Accuracy returns the mean accuracy across runs.
func (a *Aggregate) Accuracy() float64 { return a.accuracy.Mean() }

// Recall returns the mean database k-recall across runs.
func (a *Aggregate) Recall() float64 { return a.recall.Mean() }

// MeanRetrieval returns the mean retrieval latency across runs.
func (a *Aggregate) MeanRetrieval() time.Duration {
	return time.Duration(a.retrieval.Mean())
}

// MeanCacheLookup returns the mean cache-lookup time across runs.
func (a *Aggregate) MeanCacheLookup() time.Duration {
	return time.Duration(a.cache.Mean())
}

// DBCalls returns the mean database call count across runs.
func (a *Aggregate) DBCalls() float64 { return a.dbCalls.Mean() }

// AccuracyStddev returns the across-seed accuracy standard deviation.
func (a *Aggregate) AccuracyStddev() float64 { return a.accuracy.Stddev() }
