package lsh

import (
	"testing"
	"testing/quick"

	"proximity/internal/vec"
)

func TestNewHasherValidation(t *testing.T) {
	tests := []struct {
		name      string
		dim, bits int
		wantErr   bool
	}{
		{name: "valid", dim: 8, bits: 4},
		{name: "one bit", dim: 8, bits: 1},
		{name: "max bits", dim: 8, bits: MaxBits},
		{name: "zero dim", dim: 0, bits: 4, wantErr: true},
		{name: "negative dim", dim: -1, bits: 4, wantErr: true},
		{name: "zero bits", dim: 8, bits: 0, wantErr: true},
		{name: "too many bits", dim: 8, bits: MaxBits + 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := NewHasher(tt.dim, tt.bits, 1)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if h.Bits() != tt.bits || h.Dim() != tt.dim {
				t.Errorf("Bits=%d Dim=%d", h.Bits(), h.Dim())
			}
			if h.NumBuckets() != 1<<tt.bits {
				t.Errorf("NumBuckets = %d", h.NumBuckets())
			}
		})
	}
}

func TestHashDeterministicAcrossConstruction(t *testing.T) {
	a, err := NewHasher(32, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHasher(32, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(5)
	for i := 0; i < 50; i++ {
		v := vec.RandomGaussian(rng, 32)
		if a.Hash(v) != b.Hash(v) {
			t.Fatal("same seed must produce identical signatures")
		}
	}
}

func TestHashDifferentSeedsDiffer(t *testing.T) {
	a, _ := NewHasher(32, 10, 1)
	b, _ := NewHasher(32, 10, 2)
	rng := vec.NewRand(6)
	same := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		v := vec.RandomGaussian(rng, 32)
		if a.Hash(v) == b.Hash(v) {
			same++
		}
	}
	if same > trials/4 {
		t.Errorf("different hyperplanes should rarely agree on all 10 bits; agreed %d/%d", same, trials)
	}
}

func TestHashPanicsOnDimMismatch(t *testing.T) {
	h, _ := NewHasher(8, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Hash(vec.Vector{1, 2})
}

func TestCheckedHash(t *testing.T) {
	h, _ := NewHasher(4, 4, 1)
	if _, err := h.CheckedHash(vec.Vector{1}); err == nil {
		t.Error("dim mismatch should error")
	}
	sig, err := h.CheckedHash(vec.Vector{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sig != h.Hash(vec.Vector{1, 2, 3, 4}) {
		t.Error("CheckedHash disagrees with Hash")
	}
}

// Property: the signature is invariant under positive scaling — hyperplane
// sides depend only on direction. This is why the LSH cache buckets
// semantically-similar queries together regardless of embedding magnitude.
func TestScaleInvariance(t *testing.T) {
	h, err := NewHasher(16, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		v := vec.RandomGaussian(r, 16)
		scaled := vec.Scale(vec.Clone(v), 0.25+float32(r.Float64())*10)
		return h.Hash(v) == h.Hash(scaled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: antipodal vectors receive complementary signatures (up to
// boundary cases with an exact zero dot product, which RandomGaussian
// essentially never produces).
func TestAntipodalComplement(t *testing.T) {
	h, err := NewHasher(16, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint32(1<<8 - 1)
	f := func(seed uint64) bool {
		r := vec.NewRand(seed)
		v := vec.RandomGaussian(r, 16)
		neg := vec.Scale(vec.Clone(v), -1)
		return h.Hash(v)^h.Hash(neg) == mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Nearby vectors should collide far more often than random pairs; this is
// the locality property Proximity-LSH relies on to keep its hit rate.
func TestLocality(t *testing.T) {
	const (
		dim    = 64
		bits   = 8
		trials = 400
	)
	h, err := NewHasher(dim, bits, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRand(13)
	nearCollisions, farCollisions := 0, 0
	for i := 0; i < trials; i++ {
		base := vec.Scale(vec.RandomUnit(rng, dim), 10)
		near := vec.GaussianAround(rng, base, 0.05)
		far := vec.Scale(vec.RandomUnit(rng, dim), 10)
		if h.Hash(base) == h.Hash(near) {
			nearCollisions++
		}
		if h.Hash(base) == h.Hash(far) {
			farCollisions++
		}
	}
	if nearCollisions < trials*3/4 {
		t.Errorf("near pairs collided only %d/%d times", nearCollisions, trials)
	}
	if farCollisions > trials/4 {
		t.Errorf("far pairs collided %d/%d times, expected rare", farCollisions, trials)
	}
}

func TestHammingDistance(t *testing.T) {
	tests := []struct {
		a, b uint32
		want int
	}{
		{0, 0, 0},
		{0b1010, 0b1010, 0},
		{0b1010, 0b0101, 4},
		{0b1, 0b0, 1},
		{0xffffffff, 0, 32},
	}
	for _, tt := range tests {
		if got := HammingDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("HammingDistance(%b, %b) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestProbeSequence(t *testing.T) {
	h, err := NewHasher(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := vec.RandomGaussian(vec.NewRand(1), 8)
	probes := h.ProbeSequence(v)
	if len(probes) != 5 {
		t.Fatalf("len(probes) = %d, want 5", len(probes))
	}
	base := probes[0]
	if base != h.Hash(v) {
		t.Error("first probe must be the base signature")
	}
	seen := map[uint32]bool{base: true}
	for _, p := range probes[1:] {
		if HammingDistance(base, p) != 1 {
			t.Errorf("probe %b is not at Hamming distance 1 from %b", p, base)
		}
		if seen[p] {
			t.Errorf("duplicate probe %b", p)
		}
		seen[p] = true
	}
}
