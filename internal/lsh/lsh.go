// Package lsh implements random-hyperplane locality-sensitive hashing
// (Charikar, STOC '02), the bucketing scheme behind Proximity-LSH (§3.2 of
// the paper). Each embedding is compared against L random hyperplanes
// through the origin; the resulting L-bit sign pattern is the bucket key.
// Vectors with a small angle collide with high probability, so each bucket
// of the cache holds mutually similar queries.
package lsh

import (
	"fmt"

	"proximity/internal/vec"
)

// MaxBits bounds the signature width so bucket keys fit comfortably in a
// uint32 map key. The paper evaluates L ∈ {4, 6, 8, 10}.
const MaxBits = 30

// Hasher computes L-bit signatures from a fixed set of random hyperplanes.
// A Hasher is immutable after construction and safe for concurrent use.
type Hasher struct {
	planes []vec.Vector
	dim    int
}

// NewHasher creates a hasher with bits hyperplanes for dim-dimensional
// vectors. The hyperplane normals are drawn deterministically from the
// seed so that every run of an experiment buckets identically.
func NewHasher(dim, bits int, seed uint64) (*Hasher, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension must be positive, got %d", dim)
	}
	if bits <= 0 || bits > MaxBits {
		return nil, fmt.Errorf("lsh: bits must be in [1, %d], got %d", MaxBits, bits)
	}
	rng := vec.NewRand(seed)
	planes := make([]vec.Vector, bits)
	for i := range planes {
		planes[i] = vec.RandomUnit(rng, dim)
	}
	return &Hasher{planes: planes, dim: dim}, nil
}

// Bits returns the signature width L.
func (h *Hasher) Bits() int { return len(h.planes) }

// Dim returns the expected vector dimensionality.
func (h *Hasher) Dim() int { return h.dim }

// NumBuckets returns 2^L, the theoretical number of buckets.
func (h *Hasher) NumBuckets() int { return 1 << len(h.planes) }

// Hash returns the signature h(q) = (q·r₁ ≥ 0, …, q·r_L ≥ 0) packed into a
// uint32, bit i set when q·rᵢ ≥ 0. The cost is O(L·d), matching the
// paper's lookup cost analysis. Hash panics on a dimension mismatch, which
// indicates a programming error (mixing embedders); use CheckedHash at
// trust boundaries.
func (h *Hasher) Hash(q vec.Vector) uint32 {
	if len(q) != h.dim {
		panic(fmt.Sprintf("lsh: vector dim %d, hasher dim %d", len(q), h.dim))
	}
	var sig uint32
	for i, p := range h.planes {
		if vec.Dot(q, p) >= 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// CheckedHash is the error-returning variant of Hash.
func (h *Hasher) CheckedHash(q vec.Vector) (uint32, error) {
	if len(q) != h.dim {
		return 0, fmt.Errorf("lsh: vector dim %d, hasher dim %d: %w", len(q), h.dim, vec.ErrDimensionMismatch)
	}
	return h.Hash(q), nil
}

// HammingDistance counts differing signature bits; it approximates the
// angle between the hashed vectors and is exposed for diagnostics and
// multi-probe extensions.
func HammingDistance(a, b uint32) int {
	x := a ^ b
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// ProbeSequence returns the signature followed by its single-bit
// perturbations, i.e. the buckets in increasing Hamming distance up to
// distance 1. Multi-probe lookup is an optional extension (§6 future
// work): checking adjacent buckets trades extra scans for a higher hit
// rate on queries that straddle a hyperplane.
func (h *Hasher) ProbeSequence(q vec.Vector) []uint32 {
	base := h.Hash(q)
	out := make([]uint32, 0, 1+h.Bits())
	out = append(out, base)
	for i := 0; i < h.Bits(); i++ {
		out = append(out, base^(1<<uint(i)))
	}
	return out
}
