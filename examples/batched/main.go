// Batched: measure the miss-coalescing batched retrieval pipeline.
//
// The program builds an IVF index over a synthetic corpus and replays a
// thundering-herd stream — every novel query arrives as a burst of
// near-simultaneous duplicates, the trending-query pattern — against the
// bare miss path (no cache, so the comparison isolates what the pipeline
// optimizes). It first measures each configuration's closed-loop
// capacity, then replays in open loop at a fixed rate between the two
// capacities: above what the unbatched path sustains, below what the
// batched path sustains. In-flight duplicates share one index search
// (singleflight) and unique misses gather into batched SearchBatch
// passes that probe each IVF cell once per batch.
//
// Run with: go run ./examples/batched
package main

import (
	"fmt"
	"log"
	"math"

	"proximity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		dim    = 256
		topics = 240
		burst  = 6
		k      = 4
	)
	enc := proximity.NewEmbedder(dim, 42, proximity.MedicalThesaurus())

	// A synthetic corpus clustered around topic words, served by an IVF
	// index (the batch-aware substrate).
	var corpus []proximity.Vector
	for t := 0; t < topics; t++ {
		for d := 0; d < 12; d++ {
			corpus = append(corpus, enc.Embed(fmt.Sprintf("passage %d about topic-%d detail-%d", d, t, d)))
		}
	}
	// Probe half of the coarse lists so one traversal carries
	// production-shaped cost relative to per-query fixed overheads.
	db, err := proximity.NewIVFIndex(corpus, proximity.L2Distance, proximity.IVFConfig{
		NProbe: 27,
		Seed:   1,
	})
	if err != nil {
		return err
	}

	// The herd: each topic's query arrives burst times back-to-back.
	wl := proximity.Workload{Name: "thundering-herd"}
	for t := 0; t < topics; t++ {
		text := fmt.Sprintf("common questions about topic-%d", t)
		emb := enc.Embed(text)
		for o := 0; o < burst; o++ {
			wl.Queries = append(wl.Queries, proximity.WorkloadQuery{
				Text:       text,
				Embedding:  emb,
				Question:   t,
				Occurrence: o,
			})
		}
	}

	newTarget := func(searcher proximity.Searcher) (proximity.LoadTarget, error) {
		retriever, err := proximity.NewRetriever(nil, db, proximity.RetrieverOptions{
			K:        k,
			Searcher: searcher,
		})
		if err != nil {
			return nil, err
		}
		return proximity.NewRetrieverTarget(retriever)
	}
	replay := func(searcher proximity.Searcher, opts proximity.LoadOptions) (*proximity.LoadReport, error) {
		target, err := newTarget(searcher)
		if err != nil {
			return nil, err
		}
		return proximity.RunLoad(target, wl, opts)
	}

	// Phase 1: closed-loop capacity probes.
	closed := proximity.LoadOptions{Mode: proximity.ClosedLoop, Workers: 24}
	unCap, err := replay(nil, closed)
	if err != nil {
		return err
	}
	pipe, err := proximity.NewBatchPipeline(db, proximity.BatchOptions{Seed: 3})
	if err != nil {
		return err
	}
	bCap, err := replay(pipe, closed)
	if err != nil {
		return err
	}
	if err := pipe.Close(); err != nil {
		return err
	}
	fmt.Printf("closed-loop capacity: unbatched %.0f qps, batched %.0f qps (%+.0f%%)\n\n",
		unCap.AchievedQPS, bCap.AchievedQPS,
		100*(bCap.AchievedQPS-unCap.AchievedQPS)/unCap.AchievedQPS)

	// Phase 2: open loop at the capacity midpoint — a load the
	// unbatched miss path cannot sustain but the pipeline can.
	open := proximity.LoadOptions{
		Mode:    proximity.OpenLoop,
		QPS:     math.Sqrt(unCap.AchievedQPS * bCap.AchievedQPS),
		Workers: 24,
		Seed:    11,
	}
	fmt.Printf("=== unbatched miss path (open loop @ %.0f qps) ===\n", open.QPS)
	unbatched, err := replay(nil, open)
	if err != nil {
		return err
	}
	fmt.Print(unbatched.Render())

	fmt.Printf("=== batched miss path (open loop @ %.0f qps) ===\n", open.QPS)
	pipe, err = proximity.NewBatchPipeline(db, proximity.BatchOptions{Seed: 3})
	if err != nil {
		return err
	}
	batched, err := replay(pipe, open)
	if err != nil {
		return err
	}
	if err := pipe.Close(); err != nil {
		return err
	}
	fmt.Print(batched.Render())

	st := pipe.Stats()
	fmt.Printf("pipeline: %d searches, %d coalesced (%.1f%%), %d flushes (mean batch %.2f; %d size / %d timeout / %d drain)\n",
		st.Searches, st.Coalesced, 100*st.CoalesceRate(),
		st.Flushes, st.MeanBatch(), st.SizeFlushes, st.TimeoutFlushes, st.DrainFlushes)
	fmt.Printf("p95: unbatched %v -> batched %v\n", unbatched.P95, batched.P95)
	return nil
}
