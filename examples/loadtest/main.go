// Loadtest: drive a sharded Proximity cache with concurrent traffic and
// compare it against the single-mutex baseline.
//
// The program builds a synthetic corpus, replays a rephrased query
// stream in closed loop (every worker issues back-to-back, measuring
// peak throughput), then in open loop (Poisson arrivals at a target
// QPS, measuring latency under offered load), and prints the load
// reports plus the shard pressure table.
//
// Run with: go run ./examples/loadtest
package main

import (
	"fmt"
	"log"
	"runtime"

	"proximity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		dim     = 256
		topics  = 60
		repeats = 8
	)
	enc := proximity.NewEmbedder(dim, 42, proximity.MedicalThesaurus())

	// A synthetic corpus: a few hundred "passages" around topic words.
	db, err := proximity.NewFlatIndex(dim, proximity.L2Distance)
	if err != nil {
		return err
	}
	for t := 0; t < topics; t++ {
		for d := 0; d < 5; d++ {
			text := fmt.Sprintf("passage %d about topic-%d detail-%d", d, t, d)
			if err := db.Add(enc.Embed(text)); err != nil {
				return err
			}
		}
	}

	// The workload: each topic queried `repeats` times (exact repeats —
	// see examples/quickstart for the rephrasing demo), so a warm cache
	// answers (repeats-1)/repeats of the stream.
	wl := proximity.Workload{Name: "synthetic-topics"}
	embeds := make([]proximity.Vector, topics)
	for t := range embeds {
		embeds[t] = enc.Embed(fmt.Sprintf("common questions about topic-%d", t))
	}
	for r := 0; r < repeats; r++ {
		for t := 0; t < topics; t++ {
			wl.Queries = append(wl.Queries, proximity.WorkloadQuery{
				Text:       fmt.Sprintf("common questions about topic-%d", t),
				Embedding:  embeds[t],
				Question:   t,
				Occurrence: r,
			})
		}
	}

	// At least 8 shards so the comparison is meaningful on small hosts.
	shards := max(8, runtime.GOMAXPROCS(0))
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"single-mutex (1 shard)", 1},
		{fmt.Sprintf("sharded (%d shards)", shards), shards},
	} {
		// Capacity is generous per shard: LSH routing concentrates
		// similar topics, and a tight hot shard would evict-thrash
		// (watch the pressure table's imbalance column for this).
		cache, err := proximity.NewShardedFlatCache(dim, cfg.shards, proximity.Options{
			Capacity:  8 * topics,
			Tolerance: 1.0,
			Policy:    proximity.LRU,
		}, 7)
		if err != nil {
			return err
		}
		retriever, err := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 2})
		if err != nil {
			return err
		}
		target, err := proximity.NewRetrieverTarget(retriever)
		if err != nil {
			return err
		}

		fmt.Printf("=== %s ===\n", cfg.name)
		closed, err := proximity.RunLoad(target, wl, proximity.LoadOptions{
			Mode:    proximity.ClosedLoop,
			Workers: 2 * shards,
		})
		if err != nil {
			return err
		}
		fmt.Print(closed.Render())

		cache.Clear()
		open, err := proximity.RunLoad(target, wl, proximity.LoadOptions{
			Mode: proximity.OpenLoop,
			QPS:  2000,
			Seed: 11,
		})
		if err != nil {
			return err
		}
		fmt.Print(open.Render())
		// Clear drops entries but keeps counters, so this table's
		// hit/miss/put columns are cumulative across both passes.
		fmt.Print(cache.Report().Render())
		fmt.Println()
	}
	return nil
}
