// MedRAG-Zipf example: the paper's realistically-skewed biomedical
// workload (§4.2.2) — thousands of queries drawn Zipf(0.8) over a
// question set, every occurrence uniquely rephrased — served by
// Proximity-LSH with re-ranking (ρ=4), the configuration behind the
// paper's headline result (77.2% fewer database calls at stable accuracy).
//
// Run with: go run ./examples/medrag-zipf [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/llm"
	"proximity/internal/rag"
	"proximity/internal/report"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

func main() {
	full := flag.Bool("full", false, "paper-sized benchmark (500 questions, 10k queries, dim 768)")
	flag.Parse()
	if err := run(*full); err != nil {
		log.Fatal(err)
	}
}

func run(full bool) error {
	benchCfg := dataset.MedRAGConfig{Questions: 80, Topics: 12, DocsPerTopic: 8, Dim: 256, Seed: 3}
	totalQueries := 1500
	if full {
		benchCfg = dataset.MedRAGConfig{Seed: 3}
		totalQueries = 10000
	}
	fmt.Println("building MedRAG-sim benchmark (PubMedQA-style questions over a biomedical corpus)...")
	bench, err := dataset.NewMedRAG(benchCfg)
	if err != nil {
		return err
	}
	db, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		return err
	}

	fmt.Printf("drawing %d queries ~ Zipf(0.8) over %d questions, each uniquely rephrased...\n",
		totalQueries, len(bench.Questions))
	w, err := workload.ZipfVariants(bench, totalQueries, 0.8, 5)
	if err != nil {
		return err
	}
	fmt.Printf("max achievable hit rate (repeat fraction): %.1f%%\n\n", 100*w.MaxHitRate())

	tbl := report.NewTable("MedRAG-Zipf — Proximity-LSH (L=8, b=20, ρ=4) vs no cache",
		"config", "hit rate [%]", "accuracy [%]", "recall [%]", "mean retrieval", "db calls")

	runOnce := func(name string, cache core.Cache) error {
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{
			K:       bench.DefaultK,
			Rerank:  4,
			Source:  db,
			Latency: vectordb.PubMedFlatLatency(13),
		})
		if err != nil {
			return err
		}
		ans, err := llm.NewAnswerer(bench.Profile, 13)
		if err != nil {
			return err
		}
		p := rag.Pipeline{Bench: bench, Retriever: retr, Answerer: ans, MeasureRecall: true}
		res, err := p.Run(w)
		if err != nil {
			return err
		}
		tbl.AddRow(name,
			report.Percent(res.HitRate()),
			report.Percent(res.Accuracy()),
			report.Percent(res.MeanRecall()),
			res.MeanRetrieval().Round(1e6).String(),
			fmt.Sprintf("%d", res.DBCalls()),
		)
		return nil
	}

	if err := runOnce("no cache", nil); err != nil {
		return err
	}
	for _, tau := range []float64{5, 7.5} {
		cache, err := core.NewLSH(bench.Dim(), core.LSHOptions{
			Bits:      8,
			Tolerance: float32(tau),
			Policy:    core.LRU,
			Seed:      17,
		})
		if err != nil {
			return err
		}
		if err := runOnce(fmt.Sprintf("lsh τ=%v", tau), cache); err != nil {
			return err
		}
		fmt.Printf("  lsh τ=%v: %d/%d buckets allocated, %d entries (%.1f%% of theoretical capacity)\n",
			tau, cache.BucketsUsed(), 1<<8, cache.Len(), 100*cache.RelativeOccupancy())
	}
	fmt.Println()
	fmt.Println(tbl.String())
	fmt.Println("shape to observe: most database calls eliminated, recall ≈ 100%, accuracy unchanged.")
	return nil
}
