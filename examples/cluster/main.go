// Cluster: distributed shard routing over HTTP middleware nodes.
//
// The program spins three loopback shard nodes — each a full Proximity
// middleware with its own cache slice over a shared corpus — and routes
// a Zipf-skewed query stream across them by consistent hashing, through
// the per-node batch submitters. It then kills one node mid-stream and
// replays the same queries: the ring retries the dead node's traffic on
// the next replica, so throughput degrades but not a single query
// fails, and the wrapping retriever would fall back to its local
// database even if every node died.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"proximity"
	"proximity/internal/core"
	"proximity/internal/server"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/zipf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		dim     = 128
		corpusN = 2048
		nodes   = 3
		queries = 3000
		unique  = 400
		k       = 4
	)

	// A shared random corpus; every node serves the same database, each
	// owning one slice of the cache keyspace.
	rng := vec.NewRand(1)
	vecs := make([]vec.Vector, corpusN)
	for i := range vecs {
		vecs[i] = vec.RandomGaussian(rng, dim)
	}
	db, err := vectordb.NewFlatFromVectors(vecs, vec.L2Distance)
	if err != nil {
		return err
	}

	bases := make([]string, nodes)
	stops := make([]func() error, nodes)
	for i := range bases {
		cache, err := core.NewFlat(dim, core.Options{Capacity: 512, Tolerance: 0.5, Policy: core.LRU})
		if err != nil {
			return err
		}
		retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: k})
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{Retriever: retr})
		if err != nil {
			return err
		}
		bound, stop, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		bases[i] = "http://" + bound
		stops[i] = stop
		fmt.Printf("node %d serving on %s\n", i, bases[i])
	}

	cc, err := proximity.NewClusterCache(dim, bases, proximity.ClusterOptions{Seed: 7})
	if err != nil {
		return err
	}
	defer cc.Close()

	// The cluster drops into the ordinary retrieval path: the client is
	// the cache, the local database the degraded-mode fallback.
	retr, err := proximity.NewRetriever(cc, db, proximity.RetrieverOptions{K: k})
	if err != nil {
		return err
	}

	// A Zipf-skewed stream over a fixed query pool: popular queries
	// repeat, so each owner's cache warms up.
	zrng := vec.NewRand(2)
	pool := make([]vec.Vector, unique)
	for i := range pool {
		pool[i] = vec.RandomGaussian(zrng, dim)
	}
	zf, err := zipf.NewSampler(vec.NewRand(3), unique, 0.9)
	if err != nil {
		return err
	}

	replay := func(label string) error {
		before := cc.RouterStats()
		// A small worker pool: concurrent queries bound for the same
		// node gather in its batch submitter and share HTTP calls.
		const workers = 16
		jobs := make(chan vec.Vector)
		results := make(chan error)
		for w := 0; w < workers; w++ {
			go func() {
				for q := range jobs {
					_, err := retr.Retrieve(q)
					results <- err
				}
			}()
		}
		go func() {
			for i := 0; i < queries; i++ {
				jobs <- pool[zf.Next()]
			}
			close(jobs)
		}()
		failed := 0
		for i := 0; i < queries; i++ {
			if err := <-results; err != nil {
				failed++
			}
		}
		rs := cc.RouterStats()
		fmt.Printf("\n%s: %d queries, %d failed, %d cluster-served (%d remote cache hits), %d retried, %d local fallbacks\n",
			label, queries, failed, rs.Served-before.Served, rs.RemoteHits-before.RemoteHits,
			rs.Retried-before.Retried, rs.Failed-before.Failed)
		for i, ns := range cc.Status() {
			fmt.Printf("  node %d %-24s healthy=%-5v hits=%-5d misses=%-5d entries=%d | submitter: %d flushes, mean batch %.2f\n",
				i, ns.Node, ns.Healthy, ns.Remote.Hits, ns.Remote.Misses,
				ns.Remote.Entries, ns.Submit.Flushes, ns.Submit.MeanBatch())
		}
		if failed > 0 {
			return fmt.Errorf("%d queries failed", failed)
		}
		return nil
	}

	if err := replay("warm-up (all nodes up)"); err != nil {
		return err
	}

	// Kill one node mid-deployment: its keyspace fails over to the next
	// ring replica; nothing is lost but speed.
	fmt.Printf("\nkilling node 0 (%s)...\n", bases[0])
	if err := stops[0](); err != nil {
		return err
	}
	defer func() {
		for _, stop := range stops[1:] {
			_ = stop()
		}
	}()
	if err := replay("degraded (node 0 dead, replica retry)"); err != nil {
		return err
	}

	fmt.Println("\nzero failed queries across both phases: the ring absorbs a dead node.")
	return nil
}
