// MMLU example: run the paper's uniform MMLU workflow (every question
// asked four times in slight variations, §4.2.2) against an HNSW-served
// corpus, comparing the no-cache baseline with Proximity-FLAT at several
// tolerances — a miniature of Fig. 6.
//
// Run with: go run ./examples/mmlu [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/hnsw"
	"proximity/internal/llm"
	"proximity/internal/rag"
	"proximity/internal/report"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
	"proximity/internal/workload"
)

func main() {
	full := flag.Bool("full", false, "paper-sized benchmark (131 questions, dim 768)")
	flag.Parse()
	if err := run(*full); err != nil {
		log.Fatal(err)
	}
}

func run(full bool) error {
	cfg := dataset.MMLUConfig{Questions: 40, Topics: 10, DocsPerTopic: 8, Dim: 256, Seed: 7}
	if full {
		cfg = dataset.MMLUConfig{Seed: 7} // paper defaults
	}
	fmt.Println("building MMLU-sim benchmark (econometrics-style questions over a topic-clustered corpus)...")
	bench, err := dataset.NewMMLU(cfg)
	if err != nil {
		return err
	}

	// The paper serves wiki_dpr with FAISS-HNSW; we build a real HNSW
	// graph over the scaled corpus.
	ix, err := hnsw.New(bench.Dim(), vec.L2Distance, hnsw.Config{Seed: 8})
	if err != nil {
		return err
	}
	if err := ix.Add(bench.Corpus.Embeddings...); err != nil {
		return err
	}
	fmt.Printf("indexed %d passages (dim %d) in an HNSW graph\n\n", ix.Len(), bench.Dim())

	w, err := workload.UniformVariants(bench, 4, 9)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d queries (%d questions × 4 variants, shuffled)\n\n", w.Len(), len(bench.Questions))

	tbl := report.NewTable("MMLU uniform workload — Proximity-FLAT vs no cache",
		"config", "hit rate [%]", "accuracy [%]", "mean retrieval", "db calls")
	for _, tau := range []float64{0, 1, 2, 5} {
		var cache core.Cache
		name := "no cache"
		if tau > 0 {
			name = fmt.Sprintf("flat τ=%v c=100", tau)
			cache, err = core.NewFlat(bench.Dim(), core.Options{Capacity: 100, Tolerance: float32(tau)})
			if err != nil {
				return err
			}
		}
		retr, err := core.NewCachedRetriever(cache, ix, core.RetrieverOptions{
			K: bench.DefaultK,
			// Simulated service time of the paper's 21M-vector
			// deployment (the local corpus is scaled down).
			Latency: vectordb.WikiDPRHNSWLatency(11),
		})
		if err != nil {
			return err
		}
		ans, err := llm.NewAnswerer(bench.Profile, 11)
		if err != nil {
			return err
		}
		p := rag.Pipeline{Bench: bench, Retriever: retr, Answerer: ans}
		run, err := p.Run(w)
		if err != nil {
			return err
		}
		tbl.AddRow(name,
			report.Percent(run.HitRate()),
			report.Percent(run.Accuracy()),
			run.MeanRetrieval().Round(1e5).String(),
			fmt.Sprintf("%d", run.DBCalls()),
		)
	}
	fmt.Println(tbl.String())
	fmt.Println("shape to observe: hit rate grows with τ, retrieval latency shrinks, accuracy holds.")
	return nil
}
