// Quickstart: put a Proximity cache in front of a small vector database
// and watch rephrased queries bypass the nearest-neighbor search.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"proximity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const dim = 256

	// A thesaurus stands in for the semantic knowledge of a neural
	// encoder: synonyms embed identically. Production users plug in a
	// real embedding model via the proximity.Embedder interface.
	enc := proximity.NewEmbedder(dim, 42, proximity.MedicalThesaurus())

	// Index a handful of passages — the "vector database".
	passages := []string{
		"inhaled corticosteroids are the preferred long term treatment for persistent asthma",
		"beta blockers reduce mortality after myocardial infarction in most patients",
		"metformin is first line therapy for type 2 diabetes unless contraindicated",
		"regular aerobic exercise lowers resting blood pressure in hypertensive adults",
		"melatonin can shift circadian rhythm and ease jet lag symptoms",
	}
	db, err := proximity.NewFlatIndex(dim, proximity.L2Distance)
	if err != nil {
		return err
	}
	for _, p := range passages {
		if err := db.Add(enc.Embed(p)); err != nil {
			return err
		}
	}

	// The Proximity cache: tolerance τ=1 admits rephrasings of a past
	// query; LRU keeps hot topics resident.
	cache, err := proximity.NewFlatCache(dim, proximity.Options{
		Capacity:  64,
		Tolerance: 1.0,
		Policy:    proximity.LRU,
	})
	if err != nil {
		return err
	}
	retriever, err := proximity.NewRetriever(cache, db, proximity.RetrieverOptions{K: 2})
	if err != nil {
		return err
	}

	// The paper's §2.3 example pair: "best treatment for asthma" vs
	// "asthma best therapies" — different words, same intent.
	queries := []string{
		"best treatment for asthma",
		"asthma best therapies",       // synonym + reorder: cache hit
		"first line therapy diabetes", // new topic: miss
		"diabetes first line remedy",  // rephrasing: hit
		"best treatment for asthma",   // exact repeat: hit
	}
	for _, q := range queries {
		res, err := retriever.Retrieve(enc.Embed(q))
		if err != nil {
			return err
		}
		source := "database"
		if res.Hit {
			source = "cache  "
		}
		fmt.Printf("[%s] %-34q -> passage %v: %q\n", source, q, res.Docs[0], snippet(passages[res.Docs[0]]))
	}

	stats := cache.Stats()
	fmt.Printf("\ncache: %d hits, %d misses (%.0f%% hit rate) — %d of %d database calls avoided\n",
		stats.Hits, stats.Misses, 100*stats.HitRate(), stats.Hits, stats.Lookups())
	return nil
}

func snippet(s string) string {
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}
