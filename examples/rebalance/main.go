// Rebalance: adaptive shard rebalancing driven by the eviction-pressure
// report.
//
// The program builds a sharded FLAT cache whose LSH-signature
// partitioner is deliberately re-drawn to the most imbalanced draw it
// can find (an adversarial-but-reproducible "unlucky deploy"): a
// clustered query population lands whole semantic clusters on single
// signatures, and an unlucky draw piles those signatures onto one hot
// shard. It then attaches the rebalance controller and keeps serving a
// Zipf-skewed stream: the controller observes the sustained imbalance,
// auditions candidate re-draws against the live contents, and migrates
// entries shard-by-shard mid-traffic — with zero failed queries, because
// a mid-migration lookup can only miss, never error.
//
// Run with: go run ./examples/rebalance
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"proximity"
	"proximity/internal/vec"
	"proximity/internal/zipf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		dim        = 64
		shards     = 4
		sigBits    = 4 // coarse on purpose: whole clusters share signatures
		clusters   = 12
		perCluster = 25
		corpusN    = 1024
		k          = 4
		workers    = 8
		serveFor   = 1500 * time.Millisecond
	)

	rng := vec.NewRand(1)
	corpus := make([]proximity.Vector, corpusN)
	for i := range corpus {
		corpus[i] = vec.RandomGaussian(rng, dim)
	}
	db, err := proximity.NewFlatIndex(dim, proximity.L2Distance)
	if err != nil {
		return err
	}
	if err := db.Add(corpus...); err != nil {
		return err
	}

	// The query population: semantic clusters. Members of one cluster
	// sit close enough to share an LSH signature with high probability,
	// but far enough apart (beyond τ) that each inserts its own cache
	// line — the regime where signature routing gets lumpy.
	pool := make([]proximity.Vector, 0, clusters*perCluster)
	for c := 0; c < clusters; c++ {
		center := vec.RandomGaussian(rng, dim)
		for m := 0; m < perCluster; m++ {
			q := vec.Clone(center)
			jitter := vec.RandomGaussian(rng, dim)
			for d := range q {
				q[d] += 0.12 * jitter[d]
			}
			pool = append(pool, q)
		}
	}

	base, err := proximity.NewShardedCache(dim, proximity.ShardOptions{
		Shards:        shards,
		Seed:          1,
		SignatureBits: sigBits,
		New: func(int) (proximity.Cache, error) {
			return proximity.NewFlatCache(dim, proximity.Options{
				Capacity: 2 * clusters * perCluster / shards,
				// τ below the intra-cluster spacing: exact repeats hit,
				// distinct members each keep their own line.
				Tolerance: 0.5,
				Policy:    proximity.LRU,
			})
		},
	})
	if err != nil {
		return err
	}
	retr, err := proximity.NewRetriever(base, db, proximity.RetrieverOptions{K: k})
	if err != nil {
		return err
	}

	// Warm the cache through the miss path, then force the unlucky
	// deploy: audition a handful of draws and KEEP THE WORST — the same
	// preview machinery the controller uses to pick good ones.
	for _, q := range pool {
		if _, err := retr.Retrieve(q); err != nil {
			return err
		}
	}
	worstSeed, worstImb := base.Seed(), base.Report().Imbalance
	for seed := uint64(100); seed < 116; seed++ {
		imb, err := base.PreviewSeed(seed)
		if err != nil {
			return err
		}
		if imb > worstImb {
			worstSeed, worstImb = seed, imb
		}
	}
	if worstSeed != base.Seed() {
		if _, err := base.Reseed(worstSeed); err != nil {
			return err
		}
	}
	fmt.Println("adversarial start (worst of 17 partitioner draws):")
	fmt.Print(base.Report().Render())

	// Attach the controller: sustained imbalance above 1.25 re-draws the
	// partitioner and migrates entries shard-by-shard, mid-traffic.
	cache, err := proximity.NewAdaptiveShardedCache(base, proximity.RebalanceOptions{
		Threshold:  1.25,
		Interval:   25 * time.Millisecond,
		Window:     100 * time.Millisecond,
		Cooldown:   5 * time.Second,
		MinEntries: 64,
	}, proximity.ShardRebalanceOptions{Candidates: 16})
	if err != nil {
		return err
	}
	defer cache.Close()

	// Serve a Zipf-skewed stream while the controller does its work.
	zf, err := zipf.NewSampler(vec.NewRand(7), len(pool), 0.9)
	if err != nil {
		return err
	}
	var mu sync.Mutex // guards zf: the sampler is not concurrency-safe
	next := func() proximity.Vector {
		mu.Lock()
		defer mu.Unlock()
		return pool[zf.Next()]
	}
	var served, failed atomic.Int64
	deadline := time.Now().Add(serveFor)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, err := retr.Retrieve(next()); err != nil {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	st := cache.Controller().Stats()
	fmt.Printf("\nafter %v of skewed traffic (%d served, %d failed):\n",
		serveFor, served.Load(), failed.Load())
	fmt.Print(cache.Report().Render())
	fmt.Printf("controller: %d samples, %d breaches, %d rebalances (%d declined, %d failed)\n",
		st.Samples, st.Breaches, st.Rebalances, st.Declined, st.Failures)
	// Both halves of the aha are hard gates (CI runs this program): the
	// controller must have migrated, and not one query may have failed —
	// checked BEFORE the success banner, so a red build never logs the
	// very claim that failed.
	if st.Rebalances == 0 {
		return fmt.Errorf("controller never rebalanced a standing %.2f imbalance: %+v", worstImb, st)
	}
	if failed.Load() > 0 {
		return fmt.Errorf("%d queries failed during migration", failed.Load())
	}
	fmt.Printf("last action: %s\n", st.LastOutcome.Detail)
	fmt.Printf("\nimbalance %.2f -> %.2f with zero failed queries: the re-draw migrated live.\n",
		worstImb, cache.Report().Imbalance)
	return nil
}
