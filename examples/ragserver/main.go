// RAG server example: run the Proximity HTTP middleware in-process and
// drive it with the typed client — the service deployment of the paper's
// Fig. 4, where the cache intercepts queries on their way to the vector
// database.
//
// Run with: go run ./examples/ragserver
package main

import (
	"fmt"
	"log"
	"time"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/server"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a small biomedical corpus and serve it.
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions: 30, Topics: 6, DocsPerTopic: 6, Dim: 256, Seed: 21,
	})
	if err != nil {
		return err
	}
	db, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		return err
	}
	// A FLAT cache keeps the demo deterministic: any rephrasing within
	// τ=5 is guaranteed to hit (an LSH cache would additionally require
	// the rephrasing to fall into the same hyperplane bucket).
	cache, err := core.NewFlat(bench.Dim(), core.Options{
		Capacity: 128, Tolerance: 5, Policy: core.LRU,
	})
	if err != nil {
		return err
	}
	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{K: 3})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Retriever: retr,
		Embedder:  bench.Embedder(),
		Docs:      corpusDocs{bench},
	})
	if err != nil {
		return err
	}

	// Start on an ephemeral port; report readiness through a channel.
	ready := make(chan string, 1)
	errs := make(chan error, 1)
	go func() {
		errs <- srv.ListenAndServe("127.0.0.1:0", func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errs:
		return err
	case <-time.After(5 * time.Second):
		return fmt.Errorf("server did not start")
	}
	fmt.Printf("middleware listening at %s\n\n", base)

	client := server.NewClient(base)
	if !client.Healthy() {
		return fmt.Errorf("health check failed")
	}

	// Ask the same question twice with different wording.
	q := bench.Questions[0]
	for i, text := range []string{q.Text, bench.VariantText(q, 1)} {
		res, err := client.Query(text)
		if err != nil {
			return err
		}
		source := "database"
		if res.Hit {
			source = "cache"
		}
		fmt.Printf("query %d (%s): docs=%v cacheLookup=%.1fµs\n", i+1, source, res.Docs, res.CacheMicros)
		if len(res.Texts) > 0 {
			fmt.Printf("  top passage: %.60s...\n", res.Texts[0])
		}
	}

	stats, err := client.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("\nmiddleware stats: hits=%d misses=%d hitRate=%.0f%% entries=%d/%d\n",
		stats.Hits, stats.Misses, 100*stats.HitRate, stats.Entries, stats.Capacity)

	if err := client.Flush(); err != nil {
		return err
	}
	fmt.Println("cache flushed; middleware remains serving (this demo exits here)")
	return nil
}

// corpusDocs resolves passage text for responses.
type corpusDocs struct{ bench *dataset.Benchmark }

func (c corpusDocs) Text(id int) (string, error) {
	if id < 0 || id >= c.bench.Corpus.Len() {
		return "", fmt.Errorf("doc %d out of range", id)
	}
	return c.bench.Corpus.Docs[id].Text, nil
}
