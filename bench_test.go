// Benchmarks regenerating every figure of the paper's evaluation (one
// testing.B per table/figure; see DESIGN.md §2 for the mapping) plus the
// hot-path kernel microbenchmarks. Figure benches run the CI-sized
// configuration so `go test -bench=.` stays tractable; the full
// paper-shaped sweep is `go run ./cmd/proximity-bench`.
package proximity_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"proximity/internal/batch"
	"proximity/internal/core"
	"proximity/internal/experiments"
	"proximity/internal/hnsw"
	"proximity/internal/shard"
	"proximity/internal/vamana"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

// benchSuite lazily builds one shared experiment suite so benchmarks
// reuse corpora and workloads.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := experiments.Quick()
		cfg.Seeds = 1
		suite, suiteErr = experiments.NewSuite(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func BenchmarkFig2QuerySkew(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2QuerySkew(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Projection(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3EmbeddingClusters(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6FlatGridMMLU(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6FlatGrid("mmlu"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6FlatGridMedRAG(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6FlatGrid("medrag"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ZipfPolicies(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7ZipfPolicies(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8BucketSize(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8BucketSize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Occupancy(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9Occupancy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10LookupScaling(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig10LookupScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11LookupParams(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11LookupParams(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12TripClick(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig12TripClick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpCountAblation(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.OpCountAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionsAblation(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtensionsAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hot-path kernels -------------------------------------------------

// BenchmarkVecKernels measures the distance kernels at the paper's
// dimensionality; the SIMD-equivalent unrolled loop is the cache's inner
// scan operation (Algorithm 1 line 2).
func BenchmarkVecKernels(b *testing.B) {
	rng := vec.NewRand(1)
	x := vec.RandomGaussian(rng, 768)
	y := vec.RandomGaussian(rng, 768)
	b.Run("L2Squared-768", func(b *testing.B) {
		var sink float32
		for i := 0; i < b.N; i++ {
			sink += vec.L2Squared(x, y)
		}
		_ = sink
	})
	b.Run("Dot-768", func(b *testing.B) {
		var sink float32
		for i := 0; i < b.N; i++ {
			sink += vec.Dot(x, y)
		}
		_ = sink
	})
}

// BenchmarkCacheGet measures a single lookup in both cache variants at a
// paper-scale occupancy (c=1000, d=768).
func BenchmarkCacheGet(b *testing.B) {
	const (
		dim = 768
		n   = 1000
	)
	rng := vec.NewRand(2)
	fill := func(c core.Cache) {
		r := vec.NewRand(3)
		for i := 0; i < n; i++ {
			c.Put(vec.Scale(vec.RandomUnit(r, dim), 10), []int{i})
		}
	}
	q := vec.Scale(vec.RandomUnit(rng, dim), 10)

	b.Run("flat-1000", func(b *testing.B) {
		cache, err := core.NewFlat(dim, core.Options{Capacity: n, Tolerance: 1, Policy: core.LRU})
		if err != nil {
			b.Fatal(err)
		}
		fill(cache)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Get(q)
		}
	})
	b.Run("lsh-1000", func(b *testing.B) {
		cache, err := core.NewLSH(dim, core.LSHOptions{Bits: 8, Tolerance: 1, Policy: core.LRU, Seed: 4})
		if err != nil {
			b.Fatal(err)
		}
		fill(cache)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Get(q)
		}
	})
}

// BenchmarkShardedCache measures concurrent Get/Put throughput of the
// sharded cache at 1 shard (the single-mutex baseline) and N shards.
// b.RunParallel with SetParallelism(8) hammers each configuration from
// at least 8 goroutines per CPU; on multi-core hosts the N-shard rows
// should sustain materially higher ops/sec because distinct shards never
// contend on a lock.
func BenchmarkShardedCache(b *testing.B) {
	const (
		dim  = 768
		keys = 1024
	)
	rng := vec.NewRand(8)
	queries := make([]vec.Vector, keys)
	for i := range queries {
		queries[i] = vec.Scale(vec.RandomUnit(rng, dim), 10)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			cache, err := shard.NewFlat(dim, shards, core.Options{
				Capacity:  keys,
				Tolerance: 1,
				Policy:    core.LRU,
			}, 9)
			if err != nil {
				b.Fatal(err)
			}
			for i, q := range queries {
				cache.Put(q, []int{i})
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := queries[i%keys]
					if i%16 == 0 {
						cache.Put(q, []int{i})
					} else {
						cache.Get(q)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkIndexedCache measures a single lookup in the graph-indexed
// cache against the flat scan at an occupancy past the crossover
// (n=8192, d=128), where the graph path engages. ReportAllocs documents
// the zero-alloc steady state of the pooled search scratch.
func BenchmarkIndexedCache(b *testing.B) {
	const (
		dim = 128
		n   = 8192
	)
	fill := func(c core.Cache) {
		r := vec.NewRand(21)
		for i := 0; i < n; i++ {
			c.Put(vec.Scale(vec.RandomGaussian(r, dim), 2), []int{i})
		}
	}
	// Query within τ of a cached key: both variants take the full
	// hit path (scan or descend, re-rank, admit).
	rng := vec.NewRand(21)
	q := vec.Clone(vec.Scale(vec.RandomGaussian(rng, dim), 2))
	q[0] += 0.1

	b.Run("flat-8192", func(b *testing.B) {
		cache, err := core.NewFlat(dim, core.Options{Capacity: n, Tolerance: 0.5, Policy: core.LRU})
		if err != nil {
			b.Fatal(err)
		}
		fill(cache)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Get(q)
		}
	})
	b.Run("indexed-8192", func(b *testing.B) {
		cache, err := core.NewIndexed(dim, core.IndexedOptions{
			Capacity: n, Tolerance: 0.5, Policy: core.LRU, Seed: 22,
		})
		if err != nil {
			b.Fatal(err)
		}
		fill(cache)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Get(q)
		}
	})
}

// BenchmarkBatchedRetriever compares the miss path with and without the
// miss-coalescing batch pipeline at increasing contention (b.RunParallel
// with SetParallelism 1/4/16 over an IVF index; the query stream repeats
// keys, so under concurrency in-flight duplicates coalesce and unique
// misses gather into batched cell scans). The cache is disabled so the
// benchmark isolates the database-search path the pipeline optimizes.
func BenchmarkBatchedRetriever(b *testing.B) {
	const (
		dim  = 128
		n    = 4096
		keys = 256
		k    = 8
	)
	rng := vec.NewRand(12)
	vectors := make([]vec.Vector, n)
	for i := range vectors {
		vectors[i] = vec.RandomGaussian(rng, dim)
	}
	ix, err := vectordb.BuildIVF(vectors, vec.L2Distance, vectordb.IVFConfig{Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]vec.Vector, keys)
	for i := range queries {
		queries[i] = vec.RandomGaussian(rng, dim)
	}

	run := func(b *testing.B, parallelism int, searcher core.Searcher) {
		retr, err := core.NewCachedRetriever(nil, ix, core.RetrieverOptions{
			K:        k,
			Searcher: searcher,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetParallelism(parallelism)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := retr.Retrieve(queries[i%keys]); err != nil {
					// Fatal must not be called off the main goroutine.
					b.Error(err)
					return
				}
				i++
			}
		})
	}
	for _, parallelism := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("unbatched/parallel-%d", parallelism), func(b *testing.B) {
			run(b, parallelism, nil)
		})
		b.Run(fmt.Sprintf("batched/parallel-%d", parallelism), func(b *testing.B) {
			pipe, err := batch.New(ix, batch.Options{
				Timeout: 50 * time.Microsecond,
				Seed:    14,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pipe.Close()
			run(b, parallelism, pipe)
		})
	}
}

// BenchmarkIndexSearch compares the three database substrates on the same
// random corpus (exact flat scan vs HNSW vs Vamana graph search).
func BenchmarkIndexSearch(b *testing.B) {
	const (
		dim = 128
		n   = 5000
		k   = 10
	)
	rng := vec.NewRand(5)
	vectors := make([]vec.Vector, n)
	for i := range vectors {
		vectors[i] = vec.RandomGaussian(rng, dim)
	}
	q := vec.RandomGaussian(rng, dim)

	b.Run("flat", func(b *testing.B) {
		ix, err := vectordb.NewFlatFromVectors(vectors, vec.L2Distance)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Search(q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hnsw", func(b *testing.B) {
		ix, err := hnsw.New(dim, vec.L2Distance, hnsw.Config{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.Add(vectors...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Search(q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vamana", func(b *testing.B) {
		ix, err := vamana.Build(vectors, vec.L2Distance, vamana.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Search(q, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}
