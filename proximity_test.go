package proximity

import "testing"

// TestPublicAPISurface exercises the facade end to end the way the
// package documentation advertises it.
func TestPublicAPISurface(t *testing.T) {
	const dim = 64
	th := NewThesaurus()
	th.Register("car", "automobile")
	enc := NewEmbedder(dim, 1, th)

	db, err := NewFlatIndex(dim, L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	passages := []string{
		"electric car battery range highway",
		"diesel truck cargo logistics freight",
		"bicycle commuting urban lanes helmet",
	}
	for _, p := range passages {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}

	cache, err := NewFlatCache(dim, Options{Capacity: 8, Tolerance: 1, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := NewRetriever(cache, db, RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	first, err := retr.Retrieve(enc.Embed("electric car battery range highway"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit || first.Docs[0] != 0 {
		t.Fatalf("first retrieval = %+v, want miss returning doc 0", first)
	}
	// Synonym rephrasing should hit the cache.
	second, err := retr.Retrieve(enc.Embed("electric automobile battery range highway"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit || second.Docs[0] != 0 {
		t.Fatalf("synonym retrieval = %+v, want cache hit for doc 0", second)
	}
	if got := cache.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestPublicLSHCache(t *testing.T) {
	cache, err := NewLSHCache(32, LSHOptions{Bits: 6, Tolerance: 0.5, Policy: FIFO, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEmbedder(32, 2, nil)
	v := enc.Embed("alpha beta gamma")
	cache.Put(v, []int{1, 2})
	docs, ok := cache.Get(v)
	if !ok || len(docs) != 2 {
		t.Fatalf("Get = %v, %v", docs, ok)
	}
}

func TestMedicalThesaurus(t *testing.T) {
	th := MedicalThesaurus()
	if th.Canonical("therapy") != "treatment" {
		t.Error("built-in thesaurus should map therapy to treatment")
	}
}
