package proximity

import "testing"

// TestPublicAPISurface exercises the facade end to end the way the
// package documentation advertises it.
func TestPublicAPISurface(t *testing.T) {
	const dim = 64
	th := NewThesaurus()
	th.Register("car", "automobile")
	enc := NewEmbedder(dim, 1, th)

	db, err := NewFlatIndex(dim, L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	passages := []string{
		"electric car battery range highway",
		"diesel truck cargo logistics freight",
		"bicycle commuting urban lanes helmet",
	}
	for _, p := range passages {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}

	cache, err := NewFlatCache(dim, Options{Capacity: 8, Tolerance: 1, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := NewRetriever(cache, db, RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	first, err := retr.Retrieve(enc.Embed("electric car battery range highway"))
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit || first.Docs[0] != 0 {
		t.Fatalf("first retrieval = %+v, want miss returning doc 0", first)
	}
	// Synonym rephrasing should hit the cache.
	second, err := retr.Retrieve(enc.Embed("electric automobile battery range highway"))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit || second.Docs[0] != 0 {
		t.Fatalf("synonym retrieval = %+v, want cache hit for doc 0", second)
	}
	if got := cache.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestPublicLSHCache(t *testing.T) {
	cache, err := NewLSHCache(32, LSHOptions{Bits: 6, Tolerance: 0.5, Policy: FIFO, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEmbedder(32, 2, nil)
	v := enc.Embed("alpha beta gamma")
	cache.Put(v, []int{1, 2})
	docs, ok := cache.Get(v)
	if !ok || len(docs) != 2 {
		t.Fatalf("Get = %v, %v", docs, ok)
	}
}

func TestMedicalThesaurus(t *testing.T) {
	th := MedicalThesaurus()
	if th.Canonical("therapy") != "treatment" {
		t.Error("built-in thesaurus should map therapy to treatment")
	}
}

// TestPublicShardingAndLoad exercises the serving-scale facade: a sharded
// cache behind a retriever, driven by the load generator in both traffic
// modes.
func TestPublicShardingAndLoad(t *testing.T) {
	const dim = 64
	enc := NewEmbedder(dim, 3, nil)
	db, err := NewFlatIndex(dim, L2Distance)
	if err != nil {
		t.Fatal(err)
	}
	topics := []string{
		"electric car battery range highway",
		"diesel truck cargo logistics freight",
		"bicycle commuting urban lanes helmet",
		"train schedule regional commuter line",
	}
	for _, p := range topics {
		if err := db.Add(enc.Embed(p)); err != nil {
			t.Fatal(err)
		}
	}

	cache, err := NewShardedFlatCache(dim, 4, Options{
		Capacity: 16, Tolerance: 1, Policy: LRU,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cache.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", cache.NumShards())
	}
	retr, err := NewRetriever(cache, db, RetrieverOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewRetrieverTarget(retr)
	if err != nil {
		t.Fatal(err)
	}

	wl := Workload{Name: "api-test"}
	for r := 0; r < 3; r++ {
		for q, text := range topics {
			wl.Queries = append(wl.Queries, WorkloadQuery{
				Text: text, Embedding: enc.Embed(text), Question: q, Occurrence: r,
			})
		}
	}
	closed, err := RunLoad(target, wl, LoadOptions{Mode: ClosedLoop, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Queries != 12 || closed.Errors != 0 {
		t.Fatalf("closed loop report = %+v", closed)
	}
	if closed.Hits != 8 { // every repeat of the 4 topics hits
		t.Errorf("closed loop hits = %d, want 8", closed.Hits)
	}

	cache.Clear()
	// Workers pinned to 4 so each topic's queries stay on one worker
	// (i % 4): repeats always issue after their first occurrence's Put,
	// keeping the hit count deterministic on any host.
	open, err := RunLoad(target, wl, LoadOptions{Mode: OpenLoop, QPS: 50000, Workers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if open.Hits != 8 {
		t.Errorf("open loop hits = %d, want 8", open.Hits)
	}

	rep := cache.Report()
	if rep.Entries != cache.Len() || len(rep.Shards) != 4 {
		t.Errorf("pressure report = %+v", rep)
	}

	// The sharded LSH constructor is part of the facade too.
	lshCache, err := NewShardedLSHCache(dim, 2, LSHOptions{Bits: 4, Tolerance: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if lshCache.NumShards() != 2 {
		t.Errorf("LSH NumShards = %d, want 2", lshCache.NumShards())
	}
}

// TestPublicBatchPipeline exercises the miss-coalescing facade: an IVF
// index, a batch pipeline wired through RetrieverOptions.Searcher, and
// the stats/adapters the docs advertise.
func TestPublicBatchPipeline(t *testing.T) {
	const dim = 32
	enc := NewEmbedder(dim, 3, nil)
	var corpus []Vector
	for i := 0; i < 40; i++ {
		corpus = append(corpus, enc.Embed("passage number "+string(rune('a'+i%26))))
	}
	db, err := NewIVFIndex(corpus, L2Distance, IVFConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	pipe, err := NewBatchPipeline(db, BatchOptions{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFlatCache(dim, Options{Capacity: 8, Tolerance: 1, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	retr, err := NewRetriever(cache, db, RetrieverOptions{K: 2, Searcher: pipe})
	if err != nil {
		t.Fatal(err)
	}
	res, err := retr.Retrieve(enc.Embed("passage number a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit || len(res.Docs) != 2 {
		t.Fatalf("first retrieval = %+v, want a 2-doc miss", res)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if st := pipe.Stats(); st.Searches != 1 || st.Flushes != 1 {
		t.Errorf("pipeline stats = %+v, want 1 search in 1 flush", st)
	}

	// The adapter surfaces: a batch-aware DB passes through, and the
	// batched results match per-query search.
	bdb := BatchedDB(db)
	qs := []Vector{corpus[0], corpus[1]}
	batched, err := bdb.SearchBatch(qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		single, err := db.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(batched[i]) != len(single) {
			t.Fatalf("query %d: batch %v vs single %v", i, batched[i], single)
		}
		for j := range single {
			if batched[i][j] != single[j] {
				t.Fatalf("query %d result %d: %v vs %v", i, j, batched[i][j], single[j])
			}
		}
	}
}

// TestPublicAdaptiveShardedCache exercises the adaptive facade: the
// wrapper keeps the full Cache surface, the controller is reachable for
// manual triggers, and Close stops only the loop.
func TestPublicAdaptiveShardedCache(t *testing.T) {
	const dim = 32
	base, err := NewShardedFlatCache(dim, 4, Options{
		Capacity: 64, Tolerance: 1, Policy: LRU,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewAdaptiveShardedCache(base, RebalanceOptions{
		Threshold: 1.5,
	}, ShardRebalanceOptions{Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	var c Cache = cache // the wrapper is still a Cache
	c.Put(Vector{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}, []int{1})
	if cache.Len() != 1 {
		t.Fatalf("Len = %d, want 1", cache.Len())
	}
	if cache.Controller() == nil {
		t.Fatal("Controller() is nil")
	}
	out, err := cache.Controller().TriggerNow()
	if err != nil {
		t.Fatal(err)
	}
	if out.Acted {
		t.Errorf("a one-entry cache should decline: %+v", out)
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Error("Close must stop the controller, not clear the cache")
	}

	// Fingerprint-partitioned caches have no signature to re-draw.
	fp, err := NewShardedCache(dim, ShardOptions{
		Shards:    2,
		Partition: FingerprintShards,
		New: func(int) (Cache, error) {
			return NewFlatCache(dim, Options{Capacity: 8, Tolerance: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdaptiveShardedCache(fp, RebalanceOptions{}, ShardRebalanceOptions{}); err == nil {
		t.Error("fingerprint partitioning should be rejected")
	}
}
