package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesAndWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "rf.csv")
	err := run([]string{
		"-unique", "100", "-total", "1000", "-topics", "5",
		"-docs-per-topic", "3", "-dim", "32", "-csv", csv, "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "rank,frequency" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 101 { // header + one row per unique query
		t.Errorf("csv rows = %d, want 101", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Errorf("first rank row = %q", lines[1])
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-unique", "100", "-total", "10", "-dim", "16"}); err == nil {
		t.Error("total < unique should error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag should error")
	}
}
