// Command tripclick-gen generates and analyzes the synthetic TripClick
// query log (the stand-in for the proprietary 5.2M-interaction health
// search log the paper studies in §2.3).
//
// Usage:
//
//	tripclick-gen [-unique 2000] [-total 20000] [-exponent 0.627]
//	              [-csv out.csv] [-quiet]
//
// It prints the Fig. 2 analysis (rank-frequency curve + fitted Zipf
// exponent) and optionally writes the full rank-frequency table as CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/report"
	"proximity/internal/zipf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tripclick-gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tripclick-gen", flag.ContinueOnError)
	var (
		unique   = fs.Int("unique", 2000, "unique queries (paper: ~700k)")
		total    = fs.Int("total", 20000, "total interactions (paper: 5.2M)")
		exponent = fs.Float64("exponent", 0.627, "Zipf skew (paper's measured value)")
		topics   = fs.Int("topics", 40, "health topic clusters")
		docsPer  = fs.Int("docs-per-topic", 30, "passages per topic")
		dim      = fs.Int("dim", 768, "embedding dimensionality")
		seed     = fs.Uint64("seed", 1, "generation seed")
		csvPath  = fs.String("csv", "", "write the full rank-frequency table to this CSV file")
		quiet    = fs.Bool("quiet", false, "suppress the sample query listing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	log, err := dataset.NewTripClick(dataset.TripClickConfig{
		UniqueQueries: *unique,
		TotalQueries:  *total,
		Exponent:      *exponent,
		Topics:        *topics,
		DocsPerTopic:  *docsPer,
		Dim:           *dim,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	freqs := log.Frequencies()
	fit, err := zipf.Fit(freqs)
	if err != nil {
		return err
	}

	fmt.Printf("synthetic TripClick log: %d interactions, %d unique queries\n",
		len(log.Stream), len(log.Bench.Questions))
	fmt.Printf("fitted Zipf exponent s = %.3f (configured %.3f), R² = %.3f\n\n",
		fit.Exponent, *exponent, fit.R2)

	tbl := report.NewTable("rank-frequency (log-spaced)", "rank", "frequency")
	for rank := 1; rank <= len(freqs); rank *= 2 {
		tbl.AddRow(strconv.Itoa(rank), strconv.Itoa(freqs[rank-1]))
	}
	fmt.Println(tbl.String())

	if !*quiet {
		fmt.Println("most frequent queries:")
		counts := make(map[int]int)
		for _, q := range log.Stream {
			counts[q]++
		}
		best, bestCount := 0, 0
		for q, c := range counts {
			if c > bestCount {
				best, bestCount = q, c
			}
		}
		fmt.Printf("  %dx %q\n", bestCount, log.Bench.Questions[best].Text)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, freqs); err != nil {
			return err
		}
		fmt.Printf("wrote %d ranks to %s\n", len(freqs), *csvPath)
	}
	return nil
}

func writeCSV(path string, freqs []int) error {
	return core.WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "rank,frequency"); err != nil {
			return err
		}
		for i, c := range freqs {
			if _, err := fmt.Fprintf(w, "%d,%d\n", i+1, c); err != nil {
				return err
			}
		}
		return nil
	})
}
