// Command proximity-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	proximity-bench [-quick] [-seeds N] [-experiment LIST]
//	proximity-bench -experiment loadtest [-shards N] [-concurrency K] [-qps Q]
//	    [-batch] [-batch-size B] [-batch-timeout D] [-cluster N]
//	proximity-bench -experiment rebalance [-shards N] [-concurrency K]
//	    [-rebalance-threshold T]
//	proximity-bench -experiment annindex [-entries N,M] [-ann-queries Q]
//	    [-ann-ef E1,E2] [-bench-out PATH]
//	proximity-bench -experiment overhead [-overhead-iters N]
//	    [-overhead-rounds R] [-bench-out PATH]
//	proximity-bench -experiment churn [-churn-capacity N] [-churn-mults M1,M2]
//	    [-churn-queries Q] [-bench-out PATH]
//	proximity-bench -experiment tiered [-tier-hot N] [-tier-ratios R1,R2]
//	    [-tier-queries Q] [-tier-dim D] [-bench-out PATH]
//
// where LIST is a comma-separated subset of
// fig2,fig3,fig6-mmlu,fig6-medrag,fig7,fig8,fig9,fig10,fig11,fig12,opcount,
// loadtest,rebalance,annindex,overhead,churn,tiered or "all" (default:
// every figure; loadtest, rebalance, annindex, overhead, churn, and
// tiered run only when named).
// Results print to stdout; redirect to a file to keep them. The -quick
// flag switches to the CI-sized configuration.
//
// The loadtest experiment replays the MedRAG-Zipf workload against a
// sharded cache under concurrent load: a closed-loop throughput probe at
// -concurrency workers, plus an open-loop latency probe when -qps is set.
// With -batch it additionally A/B-tests the miss path — direct searches
// vs. the miss-coalescing batched pipeline — over the same IVF index.
// With -cluster N it A/B-tests distribution: the in-process sharded
// cache vs. N loopback HTTP shard nodes behind the consistent-hash
// router, reporting per-node hit/miss and batch-submitter stats.
//
// The rebalance experiment A/B-tests adaptive shard rebalancing: the
// same Zipf-skewed stream against the same sharded cache starting from
// an adversarially imbalanced partitioner draw, once static and once
// with the rebalance controller re-drawing the partitioner mid-traffic,
// reporting p95/p99, post-skew imbalance, and migration safety (zero
// failed queries).
//
// The annindex experiment A/B-tests the cache lookup structures head to
// head — flat scan vs LSH buckets vs the graph-indexed cache — at the
// entry counts given by -entries, replaying an identical query stream
// against identically filled caches. It prints the comparison and writes
// the machine-readable result to -bench-out (default BENCH_annindex.json).
//
// The overhead experiment measures the telemetry layer's cost on the
// cached-hit path three ways — no hub, hub with sampling off (the
// production default, promised ≲1%), and every request traced — and
// writes the result to -bench-out (default BENCH_telemetry.json).
//
// The churn experiment measures graph-recall decay under FIFO eviction
// churn and its repair: the same Put stream replayed with in-edge repair
// disabled, enabled, and enabled plus scheduled maintenance, each scored
// against a freshly rebuilt graph over the identical resident set. It
// writes the result to -bench-out (default BENCH_churn.json).
//
// The tiered experiment A/B-tests the hot/warm cache hierarchy against a
// single-tier FLAT cache of the same hot capacity at the hot:warm ratios
// given by -tier-ratios: hit-rate uplift from the retained warm history,
// hot-path latency tax, warm pruning effectiveness, and hit-rate
// recovery across a snapshot-restore restart. It writes the result to
// -bench-out (default BENCH_tiered.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"proximity/internal/core"
	"proximity/internal/experiments"
)

// renderer is the common shape of every figure harness.
type renderer interface{ Render() string }

// figure pairs a name with its harness invocation.
type figure struct {
	name string
	run  func(*experiments.Suite) (renderer, error)
}

var figures = []figure{
	{"fig2", func(s *experiments.Suite) (renderer, error) { return s.Fig2QuerySkew() }},
	{"fig3", func(s *experiments.Suite) (renderer, error) { return s.Fig3EmbeddingClusters() }},
	{"fig6-mmlu", func(s *experiments.Suite) (renderer, error) { return s.Fig6FlatGrid("mmlu") }},
	{"fig6-medrag", func(s *experiments.Suite) (renderer, error) { return s.Fig6FlatGrid("medrag") }},
	{"fig7", func(s *experiments.Suite) (renderer, error) { return s.Fig7ZipfPolicies() }},
	{"fig8", func(s *experiments.Suite) (renderer, error) { return s.Fig8BucketSize() }},
	{"fig9", func(s *experiments.Suite) (renderer, error) { return s.Fig9Occupancy() }},
	{"fig10", func(s *experiments.Suite) (renderer, error) { return s.Fig10LookupScaling() }},
	{"fig11", func(s *experiments.Suite) (renderer, error) { return s.Fig11LookupParams() }},
	{"fig12", func(s *experiments.Suite) (renderer, error) { return s.Fig12TripClick() }},
	{"opcount", func(s *experiments.Suite) (renderer, error) { return s.OpCountAblation() }},
	{"ablation", func(s *experiments.Suite) (renderer, error) { return s.ExtensionsAblation() }},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "proximity-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("proximity-bench", flag.ContinueOnError)
	var (
		quick        = fs.Bool("quick", false, "use the CI-sized configuration")
		seeds        = fs.Int("seeds", 0, "override the number of averaged seeds")
		dim          = fs.Int("dim", 0, "override the embedding dimensionality")
		parallel     = fs.Int("parallel", 0, "override grid-cell parallelism")
		which        = fs.String("experiment", "all", "comma-separated figures to run, or 'all'")
		list         = fs.Bool("list", false, "list available experiments and exit")
		shards       = fs.Int("shards", 0, "loadtest: cache shard count (0 = one per CPU)")
		concurrency  = fs.Int("concurrency", 0, "loadtest: closed-loop workers (0 = one per CPU)")
		qps          = fs.Float64("qps", 0, "loadtest: add an open-loop pass at this offered load (with -batch, also overrides the A/B's self-calibrated rate)")
		batchOn      = fs.Bool("batch", false, "loadtest: add the batched-vs-unbatched miss-path comparison")
		clusterN     = fs.Int("cluster", 0, "loadtest: add the distributed A/B against this many loopback HTTP shard nodes")
		batchSize    = fs.Int("batch-size", 0, "loadtest: batch pipeline flush size (0 = default)")
		batchTimeout = fs.Duration("batch-timeout", 0, "loadtest: batch pipeline flush deadline (0 = default)")
		rebThresh    = fs.Float64("rebalance-threshold", 0, "rebalance: controller imbalance trigger (0 = default)")
		entries      = fs.String("entries", "", "annindex: comma-separated resident-entry counts (default 100000)")
		annQueries   = fs.Int("ann-queries", 0, "annindex: lookups per variant (0 = default)")
		annEf        = fs.String("ann-ef", "", "annindex: comma-separated beam widths to sweep (default 64,128,256)")
		benchOut     = fs.String("bench-out", "", "output path for the machine-readable JSON result (annindex defaults to BENCH_annindex.json, overhead to BENCH_telemetry.json; loadtest writes only when set)")
		ovIters      = fs.Int("overhead-iters", 0, "overhead: cached-hit retrievals per timed round (0 = default)")
		ovRounds     = fs.Int("overhead-rounds", 0, "overhead: timed rounds per configuration (0 = default)")
		churnCap     = fs.Int("churn-capacity", 0, "churn: cache capacity under eviction churn (0 = default 2000)")
		churnMults   = fs.String("churn-mults", "", "churn: comma-separated churn multiples (default 1,2,5)")
		churnQueries = fs.Int("churn-queries", 0, "churn: near-duplicate lookups per variant (0 = default)")
		tierHot      = fs.Int("tier-hot", 0, "tiered: hot-tier / single-tier baseline capacity (0 = default 1000)")
		tierRatios   = fs.String("tier-ratios", "", "tiered: comma-separated warm:hot ratios (default 4,16)")
		tierQueries  = fs.Int("tier-queries", 0, "tiered: lookups per query path per variant (0 = default)")
		tierDim      = fs.Int("tier-dim", 0, "tiered: embedding dimensionality (0 = default 768)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	available := append([]figure{}, figures...)
	available = append(available, figure{"loadtest", func(s *experiments.Suite) (renderer, error) {
		res, err := s.LoadTest(experiments.LoadTestOptions{
			Shards:       *shards,
			Concurrency:  *concurrency,
			QPS:          *qps,
			Batch:        *batchOn,
			Cluster:      *clusterN,
			MaxBatch:     *batchSize,
			BatchTimeout: *batchTimeout,
		})
		if err != nil {
			return nil, err
		}
		if *benchOut != "" {
			if err := writeBenchJSON(*benchOut, res); err != nil {
				return nil, err
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		return res, nil
	}})
	available = append(available, figure{"overhead", func(s *experiments.Suite) (renderer, error) {
		res, err := experiments.TelemetryOverhead(experiments.TelemetryOverheadOptions{
			Iters:  *ovIters,
			Rounds: *ovRounds,
		})
		if err != nil {
			return nil, err
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_telemetry.json"
		}
		if err := writeBenchJSON(out, res); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", out)
		return res, nil
	}})
	available = append(available, figure{"rebalance", func(s *experiments.Suite) (renderer, error) {
		return s.RebalanceAB(experiments.RebalanceABOptions{
			Shards:      *shards,
			Concurrency: *concurrency,
			Threshold:   *rebThresh,
		})
	}})
	available = append(available, figure{"churn", func(s *experiments.Suite) (renderer, error) {
		mults, err := parseEntryCounts(*churnMults)
		if err != nil {
			return nil, fmt.Errorf("bad -churn-mults: %w", err)
		}
		res, err := experiments.Churn(experiments.ChurnOptions{
			Capacity: *churnCap,
			Mults:    mults,
			Queries:  *churnQueries,
		})
		if err != nil {
			return nil, err
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_churn.json"
		}
		if err := writeBenchJSON(out, res); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", out)
		return res, nil
	}})
	available = append(available, figure{"tiered", func(s *experiments.Suite) (renderer, error) {
		ratios, err := parseEntryCounts(*tierRatios)
		if err != nil {
			return nil, fmt.Errorf("bad -tier-ratios: %w", err)
		}
		res, err := experiments.Tiered(experiments.TieredOptions{
			Hot:     *tierHot,
			Ratios:  ratios,
			Dim:     *tierDim,
			Queries: *tierQueries,
		})
		if err != nil {
			return nil, err
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_tiered.json"
		}
		if err := writeBenchJSON(out, res); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", out)
		return res, nil
	}})
	available = append(available, figure{"annindex", func(s *experiments.Suite) (renderer, error) {
		counts, err := parseEntryCounts(*entries)
		if err != nil {
			return nil, err
		}
		if *quick && counts == nil {
			counts = []int{5000}
		}
		sweep, err := parseEntryCounts(*annEf)
		if err != nil {
			return nil, fmt.Errorf("bad -ann-ef: %w", err)
		}
		res, err := experiments.ANNIndex(experiments.ANNIndexOptions{
			Entries: counts,
			Queries: *annQueries,
			EfSweep: sweep,
		})
		if err != nil {
			return nil, err
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_annindex.json"
		}
		if err := writeBenchJSON(out, res); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", out)
		return res, nil
	}})
	if *list {
		for _, f := range available {
			fmt.Println(f.name)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *dim > 0 {
		cfg.Dim = *dim
	}
	if *parallel > 0 {
		cfg.Parallelism = *parallel
	}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	selected, err := selectFigures(*which, available)
	if err != nil {
		return err
	}
	for _, f := range selected {
		start := time.Now()
		fmt.Printf("==> %s\n", f.name)
		res, err := f.run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s finished in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// parseEntryCounts turns "100000,1000000" into entry counts; an empty
// string defers to the experiment's default.
func parseEntryCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -entries value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeBenchJSON persists an experiment result as a BENCH_*.json
// artifact, atomically: plot scripts and CI consumers may read the path
// while a rerun is in flight, and must never see a torn file.
func writeBenchJSON(path string, res interface{ WriteJSON(io.Writer) error }) error {
	return core.WriteFileAtomic(path, res.WriteJSON)
}

// selectFigures resolves the -experiment list against the available set.
// "all" covers every paper figure; loadtest and rebalance run only when
// named, since their runtime depends on the concurrency flags rather
// than the suite.
func selectFigures(which string, available []figure) ([]figure, error) {
	if which == "all" {
		return figures, nil
	}
	byName := make(map[string]figure, len(available))
	for _, f := range available {
		byName[f.name] = f
	}
	var out []figure
	for _, name := range strings.Split(which, ",") {
		name = strings.TrimSpace(name)
		f, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		out = append(out, f)
	}
	return out, nil
}
