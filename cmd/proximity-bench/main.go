// Command proximity-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	proximity-bench [-quick] [-seeds N] [-experiment LIST]
//
// where LIST is a comma-separated subset of
// fig2,fig3,fig6-mmlu,fig6-medrag,fig7,fig8,fig9,fig10,fig11,fig12,opcount
// or "all" (default). Results print to stdout; redirect to a file to keep
// them. The -quick flag switches to the CI-sized configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"proximity/internal/experiments"
)

// renderer is the common shape of every figure harness.
type renderer interface{ Render() string }

// figure pairs a name with its harness invocation.
type figure struct {
	name string
	run  func(*experiments.Suite) (renderer, error)
}

var figures = []figure{
	{"fig2", func(s *experiments.Suite) (renderer, error) { return s.Fig2QuerySkew() }},
	{"fig3", func(s *experiments.Suite) (renderer, error) { return s.Fig3EmbeddingClusters() }},
	{"fig6-mmlu", func(s *experiments.Suite) (renderer, error) { return s.Fig6FlatGrid("mmlu") }},
	{"fig6-medrag", func(s *experiments.Suite) (renderer, error) { return s.Fig6FlatGrid("medrag") }},
	{"fig7", func(s *experiments.Suite) (renderer, error) { return s.Fig7ZipfPolicies() }},
	{"fig8", func(s *experiments.Suite) (renderer, error) { return s.Fig8BucketSize() }},
	{"fig9", func(s *experiments.Suite) (renderer, error) { return s.Fig9Occupancy() }},
	{"fig10", func(s *experiments.Suite) (renderer, error) { return s.Fig10LookupScaling() }},
	{"fig11", func(s *experiments.Suite) (renderer, error) { return s.Fig11LookupParams() }},
	{"fig12", func(s *experiments.Suite) (renderer, error) { return s.Fig12TripClick() }},
	{"opcount", func(s *experiments.Suite) (renderer, error) { return s.OpCountAblation() }},
	{"ablation", func(s *experiments.Suite) (renderer, error) { return s.ExtensionsAblation() }},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "proximity-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("proximity-bench", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "use the CI-sized configuration")
		seeds    = fs.Int("seeds", 0, "override the number of averaged seeds")
		dim      = fs.Int("dim", 0, "override the embedding dimensionality")
		parallel = fs.Int("parallel", 0, "override grid-cell parallelism")
		which    = fs.String("experiment", "all", "comma-separated figures to run, or 'all'")
		list     = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range figures {
			fmt.Println(f.name)
		}
		return nil
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *dim > 0 {
		cfg.Dim = *dim
	}
	if *parallel > 0 {
		cfg.Parallelism = *parallel
	}
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	selected, err := selectFigures(*which)
	if err != nil {
		return err
	}
	for _, f := range selected {
		start := time.Now()
		fmt.Printf("==> %s\n", f.name)
		res, err := f.run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s finished in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func selectFigures(which string) ([]figure, error) {
	if which == "all" {
		return figures, nil
	}
	byName := make(map[string]figure, len(figures))
	for _, f := range figures {
		byName[f.name] = f
	}
	var out []figure
	for _, name := range strings.Split(which, ",") {
		name = strings.TrimSpace(name)
		f, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", name)
		}
		out = append(out, f)
	}
	return out, nil
}
