package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSelectFigures(t *testing.T) {
	available := append([]figure{}, figures...)
	available = append(available, figure{name: "loadtest"})

	all, err := selectFigures("all", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(figures) {
		t.Errorf("all selected %d figures, want %d", len(all), len(figures))
	}
	for _, f := range all {
		if f.name == "loadtest" {
			t.Error("'all' should not include loadtest")
		}
	}

	some, err := selectFigures("fig2, fig10", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].name != "fig2" || some[1].name != "fig10" {
		t.Errorf("selection = %v", some)
	}

	lt, err := selectFigures("loadtest", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt) != 1 || lt[0].name != "loadtest" {
		t.Errorf("loadtest selection = %v", lt)
	}

	if _, err := selectFigures("fig99", available); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list should succeed: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	// opcount is the cheapest full experiment.
	if err := run([]string{"-quick", "-experiment", "opcount"}); err != nil {
		t.Errorf("quick opcount run failed: %v", err)
	}
}

func TestParseEntryCounts(t *testing.T) {
	got, err := parseEntryCounts("100000, 1000000")
	if err != nil || len(got) != 2 || got[0] != 100000 || got[1] != 1000000 {
		t.Fatalf("parseEntryCounts = %v, %v", got, err)
	}
	if got, err := parseEntryCounts(""); got != nil || err != nil {
		t.Fatalf("empty should defer to defaults, got %v, %v", got, err)
	}
	for _, bad := range []string{"abc", "0", "-5", "10,"} {
		if _, err := parseEntryCounts(bad); err == nil {
			t.Errorf("parseEntryCounts(%q) should error", bad)
		}
	}
}

// TestRunANNIndexWritesJSON: the annindex experiment must emit a
// well-formed BENCH_*.json with the full three-way comparison.
func TestRunANNIndexWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_annindex.json")
	err := run([]string{
		"-experiment", "annindex",
		"-entries", "2000", "-ann-queries", "60", "-bench-out", out,
	})
	if err != nil {
		t.Fatalf("annindex run failed: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Dim    int `json:"dim"`
		Points []struct {
			Entries int `json:"entries"`
			Flat    struct {
				HitRate float64 `json:"hitRate"`
			} `json:"flat"`
			Indexed struct {
				HitRate float64 `json:"hitRate"`
			} `json:"indexed"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("BENCH json is malformed: %v", err)
	}
	if len(res.Points) != 1 || res.Points[0].Entries != 2000 {
		t.Fatalf("unexpected points: %+v", res.Points)
	}
	if res.Points[0].Flat.HitRate == 0 || res.Points[0].Indexed.HitRate == 0 {
		t.Errorf("hit rates missing: %+v", res.Points[0])
	}
}

func TestRunQuickLoadTest(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	err := run([]string{
		"-quick", "-experiment", "loadtest",
		"-shards", "4", "-concurrency", "8", "-qps", "5000",
	})
	if err != nil {
		t.Errorf("quick loadtest run failed: %v", err)
	}
}
