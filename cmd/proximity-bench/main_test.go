package main

import "testing"

func TestSelectFigures(t *testing.T) {
	available := append([]figure{}, figures...)
	available = append(available, figure{name: "loadtest"})

	all, err := selectFigures("all", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(figures) {
		t.Errorf("all selected %d figures, want %d", len(all), len(figures))
	}
	for _, f := range all {
		if f.name == "loadtest" {
			t.Error("'all' should not include loadtest")
		}
	}

	some, err := selectFigures("fig2, fig10", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].name != "fig2" || some[1].name != "fig10" {
		t.Errorf("selection = %v", some)
	}

	lt, err := selectFigures("loadtest", available)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt) != 1 || lt[0].name != "loadtest" {
		t.Errorf("loadtest selection = %v", lt)
	}

	if _, err := selectFigures("fig99", available); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list should succeed: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	// opcount is the cheapest full experiment.
	if err := run([]string{"-quick", "-experiment", "opcount"}); err != nil {
		t.Errorf("quick opcount run failed: %v", err)
	}
}

func TestRunQuickLoadTest(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	err := run([]string{
		"-quick", "-experiment", "loadtest",
		"-shards", "4", "-concurrency", "8", "-qps", "5000",
	})
	if err != nil {
		t.Errorf("quick loadtest run failed: %v", err)
	}
}
