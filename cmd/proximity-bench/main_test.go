package main

import "testing"

func TestSelectFigures(t *testing.T) {
	all, err := selectFigures("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(figures) {
		t.Errorf("all selected %d figures, want %d", len(all), len(figures))
	}

	some, err := selectFigures("fig2, fig10")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].name != "fig2" || some[1].name != "fig10" {
		t.Errorf("selection = %v", some)
	}

	if _, err := selectFigures("fig99"); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list should succeed: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke test in -short mode")
	}
	// opcount is the cheapest full experiment.
	if err := run([]string{"-quick", "-experiment", "opcount"}); err != nil {
		t.Errorf("quick opcount run failed: %v", err)
	}
}
