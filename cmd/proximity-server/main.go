// Command proximity-server runs the Proximity retrieval middleware over a
// synthetic biomedical corpus: an HTTP service that embeds text queries,
// consults the approximate cache, and falls back to the vector database
// on misses — the deployment shape of the paper's Fig. 4.
//
// Usage:
//
//	proximity-server [-addr :8080] [-cache lsh|flat|none] [-tau 5]
//	                 [-capacity 200] [-bits 8] [-policy lru|fifo]
//	                 [-topics 20] [-docs-per-topic 20] [-dim 768]
//	                 [-shards N] [-rebalance-threshold T]
//	                 [-tier-warm N] [-tier-dir PATH] [-snapshot PATH]
//	                 [-trace-sample N] [-pprof] [-log-level info]
//	proximity-server -node [-addr :8081] ...
//	proximity-server -peers http://h1:8081,http://h2:8081 [-replicas 2]
//	                 [-rebalance-threshold T]
//
// Endpoints: POST /v1/query {"text": ...}, POST /v1/retrieve
// {"embedding": [...]}, POST /v1/retrieve/batch {"embeddings": [[...]]},
// GET /v1/stats, POST /v1/flush, POST /v1/rebalance, GET /healthz,
// GET /v1/healthz (build info), GET /metrics (Prometheus text),
// GET /v1/traces (recent sampled traces), and — with -pprof —
// /debug/pprof/.
//
// # Observability
//
// -trace-sample N samples 1 in N requests into a per-stage trace (cache
// lookup, batch queue, database search, node RPC); sampled traces are
// buffered and served at /v1/traces. In router mode the trace crosses the
// wire: the router sends its trace ID in the X-Proximity-Trace request
// header, the owning node records its stages under that ID, and the spans
// return in the X-Proximity-Trace-Spans response header to be stitched
// into one timeline. Per-stage latency histograms, cache/batch/ring
// counters, and runtime gauges are always exported at /metrics;
// -log-level gates the structured request/routing logs; -pprof opts the
// process into the net/http/pprof handlers.
//
// # Adaptive rebalancing
//
// With -shards N the cache is partitioned across N independently-locked
// shards, and -rebalance-threshold T (> 1) starts the adaptive
// controller: when the shard imbalance reported by /v1/stats stays above
// T for a sustained window, the partitioner is re-drawn and entries
// migrate shard-by-shard without pausing service. In router mode
// (-peers), the same flag instead re-weights ring virtual nodes to shift
// hash arcs off overloaded shard nodes. /v1/rebalance triggers one
// action manually; the stats payload carries the controller counters.
//
// # Tiered cache and warm restart
//
// -tier-warm N layers a memory-mapped warm tier of N entries under the
// hot cache (-capacity entries of the -cache variant): hot evictions
// demote into the warm tier instead of being discarded, and — under LRU —
// a warm hit promotes its entry back into the hot tier. Admission
// semantics are unchanged; only more history is retained. -tier-dir
// places the warm record file (system temp by default; the file is
// unlinked while open, so nothing survives a crash).
//
// -snapshot PATH arms warm restarts: the cache contents load from PATH at
// startup (a missing snapshot is fine) and are written back crash-safely
// on SIGTERM/SIGINT, so a restarted server resumes near its previous hit
// rate instead of cold. With -shards, PATH is a directory holding one
// snapshot file per shard; otherwise it is a single file. Snapshots are
// variant-agnostic — they replay through the live cache configuration, so
// the cache kind, tiering, or shard count may change across the restart.
//
// # Cluster deployment
//
// A distributed cache tier runs one -node middleware per shard host plus
// a -peers router in front (see internal/cluster): the router
// consistent-hashes each query to its owning node's batched endpoint,
// retries the next ring replica when a node fails (5xx/transport), and
// degrades to its own local database when every replica is down. -node
// is the plain middleware — the flag only marks the role in logs — so
// every node serves the same corpus; -peers replaces the local cache
// with the cluster client (the -cache flags are ignored in router mode).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"proximity/internal/cluster"
	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/rebalance"
	"proximity/internal/server"
	"proximity/internal/shard"
	"proximity/internal/telemetry"
	"proximity/internal/tier"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "proximity-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("proximity-server", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		cacheKind = fs.String("cache", "lsh", "cache variant: lsh, flat, or none")
		tau       = fs.Float64("tau", 5, "similarity tolerance τ")
		capacity  = fs.Int("capacity", 200, "flat cache capacity c")
		bitsL     = fs.Int("bits", 8, "LSH signature width L")
		bucket    = fs.Int("bucket", core.DefaultBucketCapacity, "LSH per-bucket capacity b")
		policyStr = fs.String("policy", "lru", "eviction policy: lru or fifo")
		k         = fs.Int("k", 4, "documents returned per query")
		rerank    = fs.Int("rerank", 4, "over-fetch factor ρ")
		topics    = fs.Int("topics", 20, "synthetic corpus topics")
		docsPer   = fs.Int("docs-per-topic", 20, "passages per topic")
		questions = fs.Int("questions", 100, "synthetic questions (adds gold passages)")
		dim       = fs.Int("dim", 768, "embedding dimensionality")
		seed      = fs.Uint64("seed", 1, "generation seed")
		nodeMode  = fs.Bool("node", false, "run as a cluster shard node (plain middleware; marks the role in logs)")
		peers     = fs.String("peers", "", "run as a cluster router over this comma-separated shard-node list")
		replicas  = fs.Int("replicas", cluster.DefaultReplicas, "router: distinct nodes tried per query before local fallback")
		shards    = fs.Int("shards", 0, "partition the cache across N independently-locked shards (0 = unsharded)")
		rebThresh = fs.Float64("rebalance-threshold", 0,
			"adaptive rebalancing: act when imbalance stays above this (> 1; 0 = off; needs -shards or -peers)")
		tierWarm = fs.Int("tier-warm", 0,
			"layer a memory-mapped warm tier of N entries under the hot cache (0 = single tier)")
		tierDir  = fs.String("tier-dir", "", "directory for warm-tier record files (default: system temp)")
		snapPath = fs.String("snapshot", "",
			"cache snapshot loaded at startup and written on SIGTERM/SIGINT (a file, or a directory with -shards)")
		traceSample = fs.Int("trace-sample", 0, "sample 1 in N requests into a per-stage trace served at /v1/traces (0 = off)")
		traceRing   = fs.Int("trace-ring", 0, "sampled traces kept for /v1/traces (0 = default 64)")
		pprofOn     = fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		logLevel    = fs.String("log-level", "info", "structured-log threshold: debug, info, warn, or error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	tel := telemetry.New(telemetry.Options{SampleEvery: *traceSample, RingSize: *traceRing})
	if *nodeMode && *peers != "" {
		return fmt.Errorf("-node and -peers are mutually exclusive: a process is a shard node or the router, not both")
	}
	policy, err := core.ParsePolicy(*policyStr)
	if err != nil {
		return err
	}

	log.Printf("generating synthetic biomedical corpus (%d topics × %d passages + %d questions)...",
		*topics, *docsPer, *questions)
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions:    *questions,
		Topics:       *topics,
		DocsPerTopic: *docsPer,
		Dim:          *dim,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	db, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		return err
	}

	if *rebThresh != 0 && *rebThresh <= 1 {
		return fmt.Errorf("-rebalance-threshold must exceed 1.0 (perfect balance), got %v", *rebThresh)
	}
	// Reject flag combinations that would otherwise be silently ignored.
	if *shards > 0 && *peers != "" {
		return fmt.Errorf("-shards applies to the local cache; router mode already shards across the -peers nodes")
	}
	if *shards > 0 && *cacheKind == "none" {
		return fmt.Errorf("-shards needs a cache (-cache none has nothing to partition)")
	}
	if *tierWarm > 0 && (*peers != "" || *cacheKind == "none") {
		return fmt.Errorf("-tier-warm needs a local cache (flat or lsh)")
	}
	if *snapPath != "" && (*peers != "" || *cacheKind == "none") {
		return fmt.Errorf("-snapshot needs a local cache (flat or lsh)")
	}

	// Shared tiered-cache options; only consulted when -tier-warm is set.
	topts := tier.Options{
		HotCapacity:  *capacity,
		WarmCapacity: *tierWarm,
		Tolerance:    float32(*tau),
		Policy:       policy,
		Dir:          *tierDir,
		Seed:         *seed,
		Telemetry:    tel.Stages,
	}
	if *cacheKind == "lsh" {
		topts.NewHot = tier.LSHHot(core.LSHOptions{
			Bits:           *bitsL,
			BucketCapacity: *bucket,
			Seed:           *seed,
		})
	}

	var cache core.Cache
	var rebalancer server.Rebalancer
	switch {
	case *peers != "":
		// Router mode: the cluster client is the cache; the local
		// database serves only degraded-mode fallbacks. Every peer must
		// be a -node middleware over the same corpus configuration.
		bases := strings.Split(*peers, ",")
		for i := range bases {
			bases[i] = strings.TrimSpace(bases[i])
		}
		copts := cluster.Options{
			Seed:      *seed,
			Replicas:  *replicas,
			Telemetry: tel,
			Logger:    logger,
		}
		if *rebThresh > 0 {
			copts.Rebalance = &rebalance.Options{Threshold: *rebThresh}
		}
		cc, err := cluster.New(*dim, bases, copts)
		if err != nil {
			return err
		}
		defer cc.Close()
		cache = cc
		if ctrl := cc.Controller(); ctrl != nil {
			rebalancer = ctrl
		}
		*cacheKind = fmt.Sprintf("cluster(%d nodes)", len(bases))
	case *cacheKind == "none":
		if *rebThresh > 0 {
			return fmt.Errorf("-rebalance-threshold needs a cache (-cache none has nothing to balance)")
		}
	case *tierWarm > 0 && *shards > 0:
		if *cacheKind != "flat" && *cacheKind != "lsh" {
			return fmt.Errorf("unknown cache kind %q", *cacheKind)
		}
		var sc *shard.ShardedCache
		sc, err = shard.NewTiered(*dim, *shards, topts, *seed)
		cache = sc
		if err == nil && *rebThresh > 0 {
			rebalancer, err = startShardController(sc, *rebThresh)
		}
	case *tierWarm > 0:
		if *rebThresh > 0 {
			return fmt.Errorf("-rebalance-threshold needs -shards (an unsharded cache has nothing to rebalance)")
		}
		if *cacheKind != "flat" && *cacheKind != "lsh" {
			return fmt.Errorf("unknown cache kind %q", *cacheKind)
		}
		cache, err = tier.New(*dim, topts)
	case *cacheKind == "flat" && *shards > 0:
		var sc *shard.ShardedCache
		sc, err = shard.NewFlat(*dim, *shards, core.Options{
			Capacity:  *capacity,
			Tolerance: float32(*tau),
			Policy:    policy,
		}, *seed)
		cache = sc
		if err == nil && *rebThresh > 0 {
			rebalancer, err = startShardController(sc, *rebThresh)
		}
	case *cacheKind == "lsh" && *shards > 0:
		var sc *shard.ShardedCache
		sc, err = shard.NewLSH(*dim, *shards, core.LSHOptions{
			Bits:           *bitsL,
			BucketCapacity: *bucket,
			Tolerance:      float32(*tau),
			Policy:         policy,
			Seed:           *seed,
		})
		cache = sc
		if err == nil && *rebThresh > 0 {
			rebalancer, err = startShardController(sc, *rebThresh)
		}
	case *cacheKind == "flat":
		if *rebThresh > 0 {
			return fmt.Errorf("-rebalance-threshold needs -shards (an unsharded cache has nothing to rebalance)")
		}
		cache, err = core.NewFlat(*dim, core.Options{
			Capacity:  *capacity,
			Tolerance: float32(*tau),
			Policy:    policy,
		})
	case *cacheKind == "lsh":
		if *rebThresh > 0 {
			return fmt.Errorf("-rebalance-threshold needs -shards (an unsharded cache has nothing to rebalance)")
		}
		cache, err = core.NewLSH(*dim, core.LSHOptions{
			Bits:           *bitsL,
			BucketCapacity: *bucket,
			Tolerance:      float32(*tau),
			Policy:         policy,
			Seed:           *seed,
		})
	default:
		return fmt.Errorf("unknown cache kind %q", *cacheKind)
	}
	if err != nil {
		return err
	}
	if *snapPath != "" {
		n, err := loadSnapshot(cache, *snapPath, *dim)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		if n > 0 {
			log.Printf("warm restart: %d cache entries restored from %s", n, *snapPath)
		}
	}

	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{
		K:         *k,
		Rerank:    *rerank,
		Source:    db,
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Retriever:   retr,
		Embedder:    bench.Embedder(),
		Docs:        corpusDocs{bench},
		Rebalancer:  rebalancer,
		Telemetry:   tel,
		EnablePprof: *pprofOn,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	role := "middleware"
	switch {
	case *nodeMode:
		role = "shard node"
	case *peers != "":
		role = "cluster router"
	}
	// Serve until SIGTERM/SIGINT, then write the snapshot (if armed) with
	// the listener already closed, so no in-flight fill can race the save.
	ctx, unnotify := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer unnotify()
	bound, stopSrv, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	extra := ""
	if *shards > 0 {
		extra = fmt.Sprintf(" shards=%d", *shards)
	}
	if rebalancer != nil {
		extra += fmt.Sprintf(" rebalance>%.2f", *rebThresh)
	}
	if *tierWarm > 0 {
		extra += fmt.Sprintf(" tier-warm=%d", *tierWarm)
	}
	log.Printf("proximity %s serving %d passages on %s (cache=%s τ=%v%s)",
		role, db.Len(), bound, *cacheKind, *tau, extra)
	<-ctx.Done()
	unnotify() // a second signal kills the process the default way
	if err := stopSrv(); err != nil {
		return err
	}
	if *snapPath != "" {
		n := cache.Len()
		if err := saveSnapshot(cache, *snapPath, *dim); err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		log.Printf("snapshot: %d cache entries written to %s", n, *snapPath)
	}
	if closer, ok := cache.(io.Closer); ok && *peers == "" {
		closer.Close()
	}
	log.Printf("proximity %s stopped", role)
	return nil
}

// loadSnapshot refills the cache from path, reporting how many entries
// were restored. A missing snapshot (first boot) loads nothing. Sharded
// caches read a directory of per-shard files; everything else reads one
// variant-agnostic entry snapshot and replays it.
func loadSnapshot(cache core.Cache, path string, dim int) (int, error) {
	switch c := cache.(type) {
	case *shard.ShardedCache:
		err := c.LoadSnapshots(path)
		return c.Len(), err
	case *tier.TieredCache:
		err := c.LoadSnapshotFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return c.Len(), err
	default:
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		if err != nil {
			return 0, err
		}
		defer f.Close()
		snapDim, entries, err := core.ReadEntrySnapshot(f)
		if err != nil {
			return 0, err
		}
		if snapDim != dim {
			return 0, fmt.Errorf("snapshot dimension %d does not match -dim %d", snapDim, dim)
		}
		for _, e := range entries {
			cache.PutWithTolerance(e.Key, e.Docs, e.Tol)
		}
		return len(entries), nil
	}
}

// saveSnapshot persists the cache contents to path crash-safely. Sharded
// caches write a directory of per-shard files; everything else needs
// core.EntrySource and writes one file.
func saveSnapshot(cache core.Cache, path string, dim int) error {
	switch c := cache.(type) {
	case *shard.ShardedCache:
		return c.WriteSnapshots(path)
	case *tier.TieredCache:
		return c.SaveSnapshotFile(path)
	default:
		src, ok := cache.(core.EntrySource)
		if !ok {
			return fmt.Errorf("cache %T cannot enumerate entries for a snapshot", cache)
		}
		return core.WriteFileAtomic(path, func(w io.Writer) error {
			return core.WriteEntrySnapshot(w, dim, src)
		})
	}
}

// parseLogLevel maps the -log-level flag onto slog levels.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// startShardController wires and starts the adaptive re-draw loop over
// an in-process sharded cache.
func startShardController(sc *shard.ShardedCache, threshold float64) (*rebalance.Controller, error) {
	target, err := rebalance.NewShardTarget(sc, rebalance.ShardTargetOptions{})
	if err != nil {
		return nil, err
	}
	ctrl, err := rebalance.New(target, target, rebalance.Options{Threshold: threshold})
	if err != nil {
		return nil, err
	}
	if err := ctrl.Start(); err != nil {
		return nil, err
	}
	return ctrl, nil
}

// corpusDocs adapts the benchmark corpus to the server's Documents
// interface.
type corpusDocs struct{ bench *dataset.Benchmark }

func (c corpusDocs) Text(id int) (string, error) {
	if id < 0 || id >= c.bench.Corpus.Len() {
		return "", fmt.Errorf("doc %d out of range", id)
	}
	return c.bench.Corpus.Docs[id].Text, nil
}
