// Command proximity-server runs the Proximity retrieval middleware over a
// synthetic biomedical corpus: an HTTP service that embeds text queries,
// consults the approximate cache, and falls back to the vector database
// on misses — the deployment shape of the paper's Fig. 4.
//
// Usage:
//
//	proximity-server [-addr :8080] [-cache lsh|flat|none] [-tau 5]
//	                 [-capacity 200] [-bits 8] [-policy lru|fifo]
//	                 [-topics 20] [-docs-per-topic 20] [-dim 768]
//
// Endpoints: POST /v1/query {"text": ...}, POST /v1/retrieve
// {"embedding": [...]}, GET /v1/stats, POST /v1/flush, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"proximity/internal/core"
	"proximity/internal/dataset"
	"proximity/internal/server"
	"proximity/internal/vec"
	"proximity/internal/vectordb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "proximity-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("proximity-server", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		cacheKind = fs.String("cache", "lsh", "cache variant: lsh, flat, or none")
		tau       = fs.Float64("tau", 5, "similarity tolerance τ")
		capacity  = fs.Int("capacity", 200, "flat cache capacity c")
		bitsL     = fs.Int("bits", 8, "LSH signature width L")
		bucket    = fs.Int("bucket", core.DefaultBucketCapacity, "LSH per-bucket capacity b")
		policyStr = fs.String("policy", "lru", "eviction policy: lru or fifo")
		k         = fs.Int("k", 4, "documents returned per query")
		rerank    = fs.Int("rerank", 4, "over-fetch factor ρ")
		topics    = fs.Int("topics", 20, "synthetic corpus topics")
		docsPer   = fs.Int("docs-per-topic", 20, "passages per topic")
		questions = fs.Int("questions", 100, "synthetic questions (adds gold passages)")
		dim       = fs.Int("dim", 768, "embedding dimensionality")
		seed      = fs.Uint64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := core.ParsePolicy(*policyStr)
	if err != nil {
		return err
	}

	log.Printf("generating synthetic biomedical corpus (%d topics × %d passages + %d questions)...",
		*topics, *docsPer, *questions)
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions:    *questions,
		Topics:       *topics,
		DocsPerTopic: *docsPer,
		Dim:          *dim,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	db, err := vectordb.NewFlatFromVectors(bench.Corpus.Embeddings, vec.L2Distance)
	if err != nil {
		return err
	}

	var cache core.Cache
	switch *cacheKind {
	case "none":
	case "flat":
		cache, err = core.NewFlat(*dim, core.Options{
			Capacity:  *capacity,
			Tolerance: float32(*tau),
			Policy:    policy,
		})
	case "lsh":
		cache, err = core.NewLSH(*dim, core.LSHOptions{
			Bits:           *bitsL,
			BucketCapacity: *bucket,
			Tolerance:      float32(*tau),
			Policy:         policy,
			Seed:           *seed,
		})
	default:
		return fmt.Errorf("unknown cache kind %q", *cacheKind)
	}
	if err != nil {
		return err
	}

	retr, err := core.NewCachedRetriever(cache, db, core.RetrieverOptions{
		K:      *k,
		Rerank: *rerank,
		Source: db,
	})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Retriever: retr,
		Embedder:  bench.Embedder(),
		Docs:      corpusDocs{bench},
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(*addr, func(bound string) {
		log.Printf("proximity middleware serving %d passages on %s (cache=%s τ=%v)",
			db.Len(), bound, *cacheKind, *tau)
	})
}

// corpusDocs adapts the benchmark corpus to the server's Documents
// interface.
type corpusDocs struct{ bench *dataset.Benchmark }

func (c corpusDocs) Text(id int) (string, error) {
	if id < 0 || id >= c.bench.Corpus.Len() {
		return "", fmt.Errorf("doc %d out of range", id)
	}
	return c.bench.Corpus.Docs[id].Text, nil
}
