package main

import (
	"testing"

	"proximity/internal/dataset"
)

func TestCorpusDocs(t *testing.T) {
	bench, err := dataset.NewMedRAG(dataset.MedRAGConfig{
		Questions: 3, Topics: 2, DocsPerTopic: 2, Dim: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := corpusDocs{bench}
	text, err := docs.Text(0)
	if err != nil || text == "" {
		t.Errorf("Text(0) = %q, %v", text, err)
	}
	if _, err := docs.Text(-1); err == nil {
		t.Error("negative id should error")
	}
	if _, err := docs.Text(bench.Corpus.Len()); err == nil {
		t.Error("out-of-range id should error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-cache", "warp", "-dim", "16", "-topics", "2",
		"-docs-per-topic", "2", "-questions", "2"}); err == nil {
		t.Error("unknown cache kind should error")
	}
	if err := run([]string{"-policy", "mru"}); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag should error")
	}
}
