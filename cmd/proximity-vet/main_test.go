package main

import "testing"

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-analyzers", "nosuch"}); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

func TestRunCleanPackage(t *testing.T) {
	if code := run([]string{"proximity/internal/telemetry"}); code != 0 {
		t.Fatalf("run(internal/telemetry) = %d, want 0 (clean tree)", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	if code := run([]string{"proximity/no/such/package"}); code != 2 {
		t.Fatalf("run(bogus pattern) = %d, want 2", code)
	}
}
