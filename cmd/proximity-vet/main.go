// Command proximity-vet runs the repo's static-analysis suite
// (internal/lint) over the named package patterns and exits non-zero
// on findings. CI runs it next to go vet:
//
//	go run ./cmd/proximity-vet ./...
//
// Flags:
//
//	-analyzers a,b   run only the named analyzers (default: all)
//	-list            print the suite and exit
//
// Findings print as file:line:col: analyzer: message. Suppress an
// intentional finding with //proximity:allow <analyzer> <reason> on or
// directly above the flagged line; mark zero-alloc functions with
// //proximity:hotpath in their doc comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"proximity/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("proximity-vet", flag.ContinueOnError)
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range lint.Run(pkg, analyzers) {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "proximity-vet: %d finding(s) in %d package(s)\n", total, len(pkgs))
		return 1
	}
	return 0
}
